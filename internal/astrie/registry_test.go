package astrie

import (
	"net/netip"
	"testing"
)

func TestProviderASNsMatchTable1(t *testing.T) {
	counts := map[Provider]int{
		ProviderGoogle:     1,
		ProviderAmazon:     5,
		ProviderMicrosoft:  12,
		ProviderFacebook:   1,
		ProviderCloudflare: 1,
	}
	total := 0
	for p, want := range counts {
		if got := len(ProviderASNs[p]); got != want {
			t.Errorf("%s has %d ASes, want %d", p, got, want)
		}
		total += counts[p]
	}
	if total != 20 {
		t.Errorf("total provider ASes = %d, want 20 (paper: 'their 20 ASes')", total)
	}
	// Spot-check well-known ASNs from Table 1.
	if ProviderASNs[ProviderGoogle][0] != 15169 {
		t.Error("Google ASN != 15169")
	}
	if ProviderASNs[ProviderCloudflare][0] != 13335 {
		t.Error("Cloudflare ASN != 13335")
	}
	if ProviderASNs[ProviderFacebook][0] != 32934 {
		t.Error("Facebook ASN != 32934")
	}
}

func TestPublicDNSColumn(t *testing.T) {
	if !ProviderGoogle.RunsPublicDNS() || !ProviderCloudflare.RunsPublicDNS() {
		t.Error("Google and Cloudflare run public DNS per Table 1")
	}
	for _, p := range []Provider{ProviderAmazon, ProviderMicrosoft, ProviderFacebook} {
		if p.RunsPublicDNS() {
			t.Errorf("%s should not run public DNS per Table 1", p)
		}
	}
}

func TestRegistryClassification(t *testing.T) {
	reg := NewRegistry(100)
	if reg.NumASes() != 120 {
		t.Fatalf("NumASes = %d", reg.NumASes())
	}
	for _, p := range CloudProviders {
		for _, asn := range ProviderASNs[p] {
			for _, v6 := range []bool{false, true} {
				a, err := reg.ResolverAddr(asn, v6, false, 7)
				if err != nil {
					t.Fatalf("ResolverAddr(%d): %v", asn, err)
				}
				gotASN, ok := reg.LookupAddr(a)
				if !ok || gotASN != asn {
					t.Errorf("LookupAddr(%s) = %d,%v; want %d", a, gotASN, ok, asn)
				}
				if got := reg.ProviderOf(a); got != p {
					t.Errorf("ProviderOf(%s) = %s, want %s", a, got, p)
				}
			}
		}
	}
}

func TestLongTailIsOther(t *testing.T) {
	reg := NewRegistry(50)
	asn := LongTailASNBase + 10
	a, err := reg.ResolverAddr(asn, false, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := reg.ProviderOf(a); p != ProviderOther {
		t.Errorf("long tail classified as %s", p)
	}
	if p := reg.ProviderOfASN(asn); p != ProviderOther {
		t.Errorf("ProviderOfASN = %s", p)
	}
	if p := reg.ProviderOfASN(999999); p != ProviderOther {
		t.Errorf("unknown ASN = %s", p)
	}
}

func TestResolverAddrDistinct(t *testing.T) {
	reg := NewRegistry(10)
	seen := make(map[netip.Addr]bool)
	for idx := uint32(0); idx < 100; idx++ {
		for _, v6 := range []bool{false, true} {
			for _, pub := range []bool{false, true} {
				a, err := reg.ResolverAddr(15169, v6, pub, idx)
				if err != nil {
					t.Fatal(err)
				}
				if seen[a] {
					t.Fatalf("duplicate address %s (idx=%d v6=%v pub=%v)", a, idx, v6, pub)
				}
				seen[a] = true
			}
		}
	}
}

func TestPublicDNSAddrFlag(t *testing.T) {
	reg := NewRegistry(10)
	for _, v6 := range []bool{false, true} {
		pub, err := reg.ResolverAddr(15169, v6, true, 3)
		if err != nil {
			t.Fatal(err)
		}
		priv, err := reg.ResolverAddr(15169, v6, false, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reg.IsPublicDNSAddr(pub) {
			t.Errorf("public addr %s not detected", pub)
		}
		if reg.IsPublicDNSAddr(priv) {
			t.Errorf("private addr %s detected as public", priv)
		}
	}
	// Unregistered addresses are never public.
	if reg.IsPublicDNSAddr(netip.MustParseAddr("203.0.113.200")) {
		t.Error("unknown address reported public")
	}
}

func TestResolverAddrLimits(t *testing.T) {
	reg := NewRegistry(0)
	if _, err := reg.ResolverAddr(15169, false, false, 1<<15); err == nil {
		t.Error("oversized IPv4 index accepted")
	}
	if _, err := reg.ResolverAddr(424242, false, false, 0); err == nil {
		t.Error("unknown ASN accepted")
	}
	// IPv6 has no such limit.
	if _, err := reg.ResolverAddr(15169, true, false, 1<<20); err != nil {
		t.Errorf("IPv6 large index rejected: %v", err)
	}
}

func TestRegistryDeterministic(t *testing.T) {
	a := NewRegistry(500)
	b := NewRegistry(500)
	for _, asn := range a.ASNs() {
		ia, _ := a.Info(asn)
		ib, ok := b.Info(asn)
		if !ok || ia.V4 != ib.V4 || ia.V6 != ib.V6 || ia.Provider != ib.Provider {
			t.Fatalf("registry not deterministic for AS%d", asn)
		}
	}
}

func TestRegistryScalesToPaperSize(t *testing.T) {
	// Paper sees 37k-52k ASes; the allocator must handle that.
	reg := NewRegistry(51200 - 20)
	if reg.NumASes() != 51200 {
		t.Fatalf("NumASes = %d", reg.NumASes())
	}
	// All allocations must be unique.
	seen4 := make(map[netip.Prefix]uint32)
	for _, asn := range reg.ASNs() {
		info, _ := reg.Info(asn)
		if prev, dup := seen4[info.V4]; dup {
			t.Fatalf("AS%d and AS%d share v4 prefix %v", prev, asn, info.V4)
		}
		seen4[info.V4] = asn
	}
}

func TestProviderString(t *testing.T) {
	if ProviderGoogle.String() != "Google" || ProviderOther.String() != "Other" {
		t.Error("provider names wrong")
	}
	if !ProviderAmazon.IsCloud() || ProviderOther.IsCloud() {
		t.Error("IsCloud wrong")
	}
}
