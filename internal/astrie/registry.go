package astrie

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
)

// Provider identifies one of the paper's five cloud/content providers, or
// the rest of the Internet.
type Provider uint8

// Providers studied in the paper (Table 1) plus Other for the long tail.
const (
	ProviderOther Provider = iota
	ProviderGoogle
	ProviderAmazon
	ProviderMicrosoft
	ProviderFacebook
	ProviderCloudflare
)

// CloudProviders lists the five studied providers in the paper's order.
var CloudProviders = []Provider{
	ProviderGoogle, ProviderAmazon, ProviderMicrosoft, ProviderFacebook, ProviderCloudflare,
}

// String names the provider.
func (p Provider) String() string {
	switch p {
	case ProviderGoogle:
		return "Google"
	case ProviderAmazon:
		return "Amazon"
	case ProviderMicrosoft:
		return "Microsoft"
	case ProviderFacebook:
		return "Facebook"
	case ProviderCloudflare:
		return "Cloudflare"
	}
	return "Other"
}

// IsCloud reports whether p is one of the five studied providers.
func (p Provider) IsCloud() bool { return p != ProviderOther }

// ProviderASNs reproduces Table 1 of the paper: the ASes each provider
// announces resolvers from (20 ASes in total).
var ProviderASNs = map[Provider][]uint32{
	ProviderGoogle:     {15169},
	ProviderAmazon:     {7224, 8987, 9059, 14168, 16509},
	ProviderMicrosoft:  {3598, 6584, 8068, 8069, 8070, 8071, 8072, 8073, 8074, 8075, 12076, 23468},
	ProviderFacebook:   {32934},
	ProviderCloudflare: {13335},
}

// RunsPublicDNS reproduces Table 1's "Public DNS?" column.
func (p Provider) RunsPublicDNS() bool {
	return p == ProviderGoogle || p == ProviderCloudflare
}

// ASInfo describes one autonomous system in the registry.
type ASInfo struct {
	ASN      uint32
	Name     string
	Provider Provider
	// V4 and V6 are the synthetic prefixes allocated to the AS.
	V4 netip.Prefix
	V6 netip.Prefix
}

// LongTailASNBase is the first ASN used for synthetic "rest of the
// Internet" ASes; chosen above every Table-1 ASN so they never collide.
const LongTailASNBase uint32 = 100000

// Registry holds the AS database: the provider ASes plus a configurable
// long tail, each with deterministic synthetic prefix allocations, and the
// LPM trie for address classification.
type Registry struct {
	trie Trie
	info map[uint32]*ASInfo
	asns []uint32 // sorted, for deterministic iteration
}

// NewRegistry builds a registry with the paper's 20 provider ASes plus
// longTail synthetic other-ASes. Allocation is deterministic: the i-th AS
// (in registration order) gets the IPv4 /16 and IPv6 /32 derived from its
// ordinal, so traces generated on one run classify identically on another.
func NewRegistry(longTail int) *Registry {
	r := &Registry{info: make(map[uint32]*ASInfo, longTail+20)}
	ordinal := 0
	for _, p := range CloudProviders {
		for _, asn := range ProviderASNs[p] {
			r.add(asn, fmt.Sprintf("%s-AS%d", p, asn), p, ordinal)
			ordinal++
		}
	}
	for i := 0; i < longTail; i++ {
		asn := LongTailASNBase + uint32(i)
		r.add(asn, fmt.Sprintf("AS%d", asn), ProviderOther, ordinal)
		ordinal++
	}
	sort.Slice(r.asns, func(i, j int) bool { return r.asns[i] < r.asns[j] })
	return r
}

// allowedFirstOctets are the IPv4 first octets the synthetic allocator may
// hand out: unicast space minus well-known special-purpose /8s, purely so
// generated traces look plausible in external tools.
var allowedFirstOctets = func() []byte {
	skip := map[byte]bool{10: true, 127: true, 169: true, 172: true, 192: true, 198: true, 203: true}
	var out []byte
	for o := 1; o <= 223; o++ {
		if !skip[byte(o)] {
			out = append(out, byte(o))
		}
	}
	return out
}()

// MaxASes is the capacity of the synthetic allocation scheme (one /16 per AS).
var MaxASes = len(allowedFirstOctets) * 256

// add allocates the ordinal-th prefix pair to asn and registers it.
func (r *Registry) add(asn uint32, name string, p Provider, ordinal int) {
	// IPv4: the ordinal-th /16 from the allowed unicast space.
	if ordinal >= MaxASes {
		panic("astrie: too many ASes for the synthetic allocation scheme")
	}
	first := allowedFirstOctets[ordinal/256]
	second := byte(ordinal % 256)
	v4 := netip.PrefixFrom(netip.AddrFrom4([4]byte{first, second, 0, 0}), 16)

	// IPv6: the ordinal-th /32 under 2a00::/13.
	var b16 [16]byte
	b16[0], b16[1] = 0x2a, byte(ordinal/65536)
	binary.BigEndian.PutUint16(b16[2:], uint16(ordinal%65536))
	v6 := netip.PrefixFrom(netip.AddrFrom16(b16), 32)

	info := &ASInfo{ASN: asn, Name: name, Provider: p, V4: v4, V6: v6}
	r.info[asn] = info
	r.asns = append(r.asns, asn)
	if err := r.trie.Insert(v4, asn); err != nil {
		panic(err)
	}
	if err := r.trie.Insert(v6, asn); err != nil {
		panic(err)
	}
}

// LookupAddr maps an address to its AS.
func (r *Registry) LookupAddr(a netip.Addr) (uint32, bool) {
	return r.trie.Lookup(a)
}

// ProviderOf classifies an address into a provider (ProviderOther when the
// address matches no registered prefix or a long-tail AS).
func (r *Registry) ProviderOf(a netip.Addr) Provider {
	asn, ok := r.trie.Lookup(a)
	if !ok {
		return ProviderOther
	}
	return r.ProviderOfASN(asn)
}

// ProviderOfASN classifies an ASN into a provider.
func (r *Registry) ProviderOfASN(asn uint32) Provider {
	if info, ok := r.info[asn]; ok {
		return info.Provider
	}
	return ProviderOther
}

// Info returns the registry entry for asn.
func (r *Registry) Info(asn uint32) (*ASInfo, bool) {
	info, ok := r.info[asn]
	return info, ok
}

// ASNs returns all registered ASNs in ascending order.
func (r *Registry) ASNs() []uint32 { return r.asns }

// NumASes returns the number of registered ASes.
func (r *Registry) NumASes() int { return len(r.info) }

// publicDNSV6Marker is the byte-4 marker of public-DNS IPv6 resolvers.
const publicDNSV6Marker = 0xDD

// ResolverAddr returns the idx-th synthetic resolver address inside asn's
// allocation. public marks the address as belonging to the provider's
// public DNS egress range (meaningful for Google and Cloudflare, mirroring
// the published Google Public DNS FAQ ranges used in Table 4 of the paper).
//
// IPv4 layout within the /16: host bits = [public bit | 15-bit idx], so up
// to 32768 distinct resolvers per AS per public flag. IPv6 layout within
// the /32: byte 4 is the public marker, trailing 4 bytes are idx.
func (r *Registry) ResolverAddr(asn uint32, v6, public bool, idx uint32) (netip.Addr, error) {
	info, ok := r.info[asn]
	if !ok {
		return netip.Addr{}, fmt.Errorf("astrie: unknown ASN %d", asn)
	}
	if v6 {
		b16 := info.V6.Addr().As16()
		if public {
			b16[4] = publicDNSV6Marker
		}
		binary.BigEndian.PutUint32(b16[12:], idx)
		return netip.AddrFrom16(b16), nil
	}
	if idx >= 1<<15 {
		return netip.Addr{}, fmt.Errorf("astrie: IPv4 resolver index %d exceeds /16 public-split capacity", idx)
	}
	host := uint16(idx)
	if public {
		host |= 1 << 15
	}
	// Avoid .0 and .255 last octets purely for realism.
	b4 := info.V4.Addr().As4()
	b4[2] = byte(host >> 8)
	b4[3] = byte(host)
	return netip.AddrFrom4(b4), nil
}

// IsPublicDNSAddr reports whether a synthetic resolver address was
// generated with the public flag; combined with ProviderOf it reproduces
// the paper's "queries from Google's advertised Public DNS list"
// classification (Table 4).
func (r *Registry) IsPublicDNSAddr(a netip.Addr) bool {
	a = a.Unmap()
	if _, ok := r.trie.Lookup(a); !ok {
		return false
	}
	if a.Is4() {
		return a.As4()[2]&0x80 != 0
	}
	return a.As16()[4] == publicDNSV6Marker
}
