package faults

import (
	"dnscentral/internal/resolver"
	"dnscentral/internal/stats"
)

// Robustness maps resolver counters, caller-side lookup bookkeeping and
// injected-fault totals onto the stats.Robustness report. This is the
// one canonical mapping, shared by the simulation and the CLI so their
// reports agree field for field.
func Robustness(st resolver.Stats, lookups, failures uint64, fs Stats) stats.Robustness {
	return stats.Robustness{
		Lookups:          lookups,
		Failures:         failures,
		LogicalExchanges: st.Exchanges,
		WireQueries:      st.Sent,
		Retries:          st.Retries,
		AttemptErrors:    st.AttemptErrors,
		ServfailRetries:  st.ServfailRetries,
		FailedExchanges:  st.FailedExchanges,
		TCPQueries:       st.ByTCP[true],
		TCPFallbacks:     st.TCPRetries,
		CacheHits:        st.CacheHits,
		FaultsInjected:   fs.Total(),
	}
}
