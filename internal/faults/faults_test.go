package faults

import (
	"errors"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

// fakeInner is a perfect inner transport that answers every query.
type fakeInner struct {
	calls int
	tcp   int
}

func (f *fakeInner) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	f.calls++
	if tcp {
		f.tcp++
	}
	r := &dnswire.Message{
		Header: dnswire.Header{
			ID: q.Header.ID, Response: true, RCode: dnswire.RCodeNoError,
		},
		Questions: q.Questions,
	}
	return r, time.Millisecond, nil
}

func query(id uint16) *dnswire.Message {
	return dnswire.NewQuery(id, "www.d1.nl.", dnswire.TypeA)
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if (Config{Seed: 42}).Enabled() {
		t.Error("seed-only config enabled")
	}
	for _, c := range []Config{
		{Loss: 0.1}, {Duplicate: 0.1}, {Reorder: 0.1}, {Corrupt: 0.1},
		{Truncate: 0.1}, {TCPFail: 0.1}, {Latency: time.Millisecond},
		{Jitter: time.Millisecond}, {Brownout: Brownout{Every: 10, Len: 2}},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v not enabled", c)
		}
	}
}

func TestParseBrownoutMode(t *testing.T) {
	if m, err := ParseBrownoutMode("servfail"); err != nil || m != BrownoutServfail {
		t.Errorf("servfail: %v %v", m, err)
	}
	if m, err := ParseBrownoutMode(""); err != nil || m != BrownoutDrop {
		t.Errorf("empty: %v %v", m, err)
	}
	if _, err := ParseBrownoutMode("flaky"); err == nil {
		t.Error("bad mode accepted")
	}
	if BrownoutDrop.String() != "drop" || BrownoutServfail.String() != "servfail" {
		t.Error("mode names")
	}
}

func TestInjectorDeterministicDecisionStream(t *testing.T) {
	cfg := Config{
		Loss: 0.2, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.05,
		Truncate: 0.05, TCPFail: 0.3, Jitter: 5 * time.Millisecond,
		Brownout: Brownout{Every: 30, Len: 4, Mode: BrownoutServfail},
		Seed:     99,
	}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 500; i++ {
		tcp := i%7 == 0
		va, vb := a.plan(tcp), b.plan(tcp)
		if va != vb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, va, vb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestBrownoutSchedule(t *testing.T) {
	inj := NewInjector(Config{Brownout: Brownout{Every: 10, Len: 3, Mode: BrownoutDrop}})
	var downs []int
	for i := 0; i < 30; i++ {
		if v := inj.plan(false); v.outcome == outcomeBrownoutDrop {
			downs = append(downs, i)
		}
	}
	want := []int{10, 11, 12, 20, 21, 22}
	if len(downs) != len(want) {
		t.Fatalf("brownout exchanges %v, want %v", downs, want)
	}
	for i := range want {
		if downs[i] != want[i] {
			t.Fatalf("brownout exchanges %v, want %v", downs, want)
		}
	}
}

func TestTransportDropsQuery(t *testing.T) {
	inner := &fakeInner{}
	var advanced time.Duration
	tr := WrapTransport(inner, NewInjector(Config{Loss: 1, Timeout: 300 * time.Millisecond}),
		func(d time.Duration) { advanced += d })
	_, _, err := tr.Exchange(query(1), false)
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected timeout", err)
	}
	if inner.calls != 0 {
		t.Error("lost query still reached the server")
	}
	if advanced != 300*time.Millisecond {
		t.Errorf("advanced %v, want the 300ms timeout", advanced)
	}
	st := tr.Injector().Stats()
	if st.DroppedQueries != 1 || st.Exchanges != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransportCorruptsResponse(t *testing.T) {
	inner := &fakeInner{}
	tr := WrapTransport(inner, NewInjector(Config{Corrupt: 1}), nil)
	_, _, err := tr.Exchange(query(2), false)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if inner.calls != 1 {
		t.Error("corrupted exchange must still reach the server")
	}
}

func TestTransportForcesTruncation(t *testing.T) {
	inner := &fakeInner{}
	tr := WrapTransport(inner, NewInjector(Config{Truncate: 1}), nil)
	resp, _, err := tr.Exchange(query(3), false)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Truncated || len(resp.Answers) != 0 {
		t.Fatalf("resp = %+v", resp)
	}
	// The TCP retry is never force-truncated.
	resp, _, err = tr.Exchange(query(3), true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Fatal("TCP response truncated")
	}
}

func TestTransportTCPFailure(t *testing.T) {
	inner := &fakeInner{}
	tr := WrapTransport(inner, NewInjector(Config{TCPFail: 1}), nil)
	if _, _, err := tr.Exchange(query(4), true); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v", err)
	}
	// UDP is unaffected by TCPFail.
	if _, _, err := tr.Exchange(query(4), false); err != nil {
		t.Fatal(err)
	}
}

func TestTransportBrownoutServfail(t *testing.T) {
	inner := &fakeInner{}
	tr := WrapTransport(inner, NewInjector(Config{
		Brownout: Brownout{Every: 1, Len: 1, Mode: BrownoutServfail},
	}), nil)
	// Every=1 browns out every exchange from the second onward.
	if _, _, err := tr.Exchange(query(5), false); err != nil {
		t.Fatal(err)
	}
	resp, _, err := tr.Exchange(query(6), false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeServFail || resp.Header.ID != 6 {
		t.Fatalf("resp header = %+v", resp.Header)
	}
	if inner.calls != 1 {
		t.Errorf("inner calls = %d, want 1 (servfail never reaches the engine)", inner.calls)
	}
}

func TestStatsMergeAndTotal(t *testing.T) {
	a := Stats{DroppedQueries: 2, Corrupted: 1, Exchanges: 10}
	b := Stats{DroppedResponses: 3, BrownoutServfails: 4, Exchanges: 5}
	a.Merge(b)
	if a.Exchanges != 15 || a.DroppedQueries != 2 || a.DroppedResponses != 3 {
		t.Fatalf("merged = %+v", a)
	}
	if got := a.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
}
