package faults

import "net/netip"

// RelayUDPForTest drives one datagram through the proxy's UDP relay
// path synchronously, letting tests target unreachable client
// addresses to exercise the write-error accounting.
func (p *Proxy) RelayUDPForTest(query []byte, client netip.AddrPort) {
	p.wg.Add(1)
	p.relayUDP(query, client)
}
