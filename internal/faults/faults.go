// Package faults is a deterministic, seed-driven network impairment
// layer for the simulated DNS path. The paper's headline numbers are
// query *counts* at authoritative servers, and §5 attributes a
// substantial slice of that traffic to retransmissions and broken
// resolvers on imperfect paths — traffic a lossless simulation never
// produces. This package makes those imperfections explicit and
// injectable: packet loss, duplication, reordering, latency/jitter,
// response corruption, forced truncation, and server brownouts, all
// driven by one seeded RNG so the same seed yields a byte-identical
// run.
//
// Two integration points share the same Injector decision core:
//
//   - Transport (transport.go) wraps any resolver.Transport for
//     in-process simulation with a virtual clock;
//   - Proxy (proxy.go) is a real UDP/TCP socket shim placed in front of
//     an authserver, impairing actual datagrams and byte streams.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dnscentral/internal/telemetry"
)

// BrownoutMode selects how a browned-out server misbehaves.
type BrownoutMode int

// Brownout modes.
const (
	// BrownoutDrop makes the server silently eat queries (timeout).
	BrownoutDrop BrownoutMode = iota
	// BrownoutServfail makes the server answer SERVFAIL immediately.
	BrownoutServfail
)

// String names the mode.
func (m BrownoutMode) String() string {
	if m == BrownoutServfail {
		return "servfail"
	}
	return "drop"
}

// ParseBrownoutMode parses "drop" or "servfail".
func ParseBrownoutMode(s string) (BrownoutMode, error) {
	switch strings.ToLower(s) {
	case "", "drop":
		return BrownoutDrop, nil
	case "servfail":
		return BrownoutServfail, nil
	}
	return 0, fmt.Errorf("faults: unknown brownout mode %q (want drop|servfail)", s)
}

// Brownout describes recurring server degradation windows, counted in
// exchanges so the schedule is deterministic regardless of pacing:
// exchanges [k*Every, k*Every+Len) are browned out for every k ≥ 1.
type Brownout struct {
	Every int          // window period in exchanges (0 disables)
	Len   int          // window length in exchanges
	Mode  BrownoutMode // what the degraded server does
}

// Config sets the impairment probabilities and shapes. All
// probabilities are per-decision in [0, 1]; zero values mean a perfect
// network.
type Config struct {
	// Loss is the independent drop probability applied to each UDP
	// direction (query toward the server, response back).
	Loss float64
	// Duplicate is the probability a UDP response is delivered twice.
	Duplicate float64
	// Reorder is the probability a UDP response is delivered late,
	// behind unrelated traffic (the client sees extra delay and may see
	// stale datagrams from earlier exchanges first).
	Reorder float64
	// Corrupt is the probability a UDP response payload is damaged in
	// flight (a hardened client discards it and retries).
	Corrupt float64
	// Truncate is the probability a UDP response is force-flagged TC=1,
	// pushing the client to TCP.
	Truncate float64
	// TCPFail is the probability a TCP connection attempt fails.
	TCPFail float64
	// Latency is extra one-way delay added to every delivery; Jitter
	// adds a uniform random component in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// Brownout schedules recurring server degradation windows.
	Brownout Brownout
	// Timeout is the client wait charged to a lost exchange before it
	// gives up (default 400ms of virtual or real time).
	Timeout time.Duration
	// Seed drives every random decision; same seed ⇒ same run.
	Seed int64
	// Telemetry, when set, publishes the proxy's socket-plane counters
	// (faults_proxy_udp_write_errors_total) on the registry. Proxy-only;
	// it never counts toward Enabled().
	Telemetry *telemetry.Registry
}

// Enabled reports whether any impairment is configured.
func (c Config) Enabled() bool {
	return c.Loss > 0 || c.Duplicate > 0 || c.Reorder > 0 || c.Corrupt > 0 ||
		c.Truncate > 0 || c.TCPFail > 0 || c.Latency > 0 || c.Jitter > 0 ||
		(c.Brownout.Every > 0 && c.Brownout.Len > 0)
}

// DefaultTimeout is the lost-exchange wait used when Config.Timeout is 0.
const DefaultTimeout = 400 * time.Millisecond

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Stats counts the faults actually injected. All counters are
// cumulative; read a snapshot via Injector.Stats.
type Stats struct {
	Exchanges         uint64 // impairment decisions taken
	DroppedQueries    uint64 // query lost before reaching the server
	DroppedResponses  uint64 // response lost on the way back
	Duplicated        uint64 // responses delivered twice
	Reordered         uint64 // responses delivered late / out of order
	Corrupted         uint64 // responses damaged in flight
	Truncated         uint64 // responses force-flagged TC=1
	TCPFailures       uint64 // TCP connection attempts refused
	BrownoutDrops     uint64 // queries eaten by a browned-out server
	BrownoutServfails uint64 // SERVFAILs served by a browned-out server
}

// Merge adds other's counters into s.
func (s *Stats) Merge(other Stats) {
	s.Exchanges += other.Exchanges
	s.DroppedQueries += other.DroppedQueries
	s.DroppedResponses += other.DroppedResponses
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
	s.Corrupted += other.Corrupted
	s.Truncated += other.Truncated
	s.TCPFailures += other.TCPFailures
	s.BrownoutDrops += other.BrownoutDrops
	s.BrownoutServfails += other.BrownoutServfails
}

// Total returns the number of injected fault events.
func (s Stats) Total() uint64 {
	return s.DroppedQueries + s.DroppedResponses + s.Duplicated + s.Reordered +
		s.Corrupted + s.Truncated + s.TCPFailures + s.BrownoutDrops + s.BrownoutServfails
}

// outcome is the terminal fate of one exchange.
type outcome int

const (
	outcomeDeliver outcome = iota
	outcomeDropQuery
	outcomeDropResponse
	outcomeCorrupt
	outcomeTCPFail
	outcomeBrownoutDrop
	outcomeBrownoutServfail
)

// verdict is one exchange's full impairment plan, drawn under a single
// lock so concurrent callers still consume the RNG a whole plan at a
// time.
type verdict struct {
	outcome   outcome
	truncate  bool          // force TC=1 on the delivered response
	duplicate bool          // deliver the response twice
	reorder   bool          // deliver the response late
	delay     time.Duration // extra one-way delay (latency + jitter)
	timeout   time.Duration // wait charged when the exchange is lost
}

// Injector is the shared seeded decision core. It is safe for
// concurrent use; determinism is guaranteed when exchanges are planned
// sequentially (the in-process simulation path).
type Injector struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand
	n   int // exchange counter for the brownout schedule
	st  Stats
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the impairment configuration.
func (in *Injector) Config() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// brownedOut reports whether exchange n falls in a degradation window.
func (in *Injector) brownedOut(n int) bool {
	b := in.cfg.Brownout
	if b.Every <= 0 || b.Len <= 0 || n < b.Every {
		return false
	}
	return n%b.Every < b.Len
}

// plan draws the impairment verdict for the next exchange.
func (in *Injector) plan(tcp bool) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.st.Exchanges++
	v := verdict{outcome: outcomeDeliver, timeout: in.cfg.timeout()}
	v.delay = in.cfg.Latency
	if in.cfg.Jitter > 0 {
		v.delay += time.Duration(in.rng.Int63n(int64(in.cfg.Jitter)))
	}
	n := in.n
	in.n++
	if in.brownedOut(n) {
		if in.cfg.Brownout.Mode == BrownoutServfail {
			in.st.BrownoutServfails++
			v.outcome = outcomeBrownoutServfail
		} else {
			in.st.BrownoutDrops++
			v.outcome = outcomeBrownoutDrop
		}
		return v
	}
	if tcp {
		if in.roll(in.cfg.TCPFail) {
			in.st.TCPFailures++
			v.outcome = outcomeTCPFail
		}
		return v
	}
	// UDP path: the query and the response are lost independently. Both
	// probabilities are always consumed from the RNG so the decision
	// stream stays aligned across runs regardless of branch taken.
	lostQ := in.roll(in.cfg.Loss)
	lostR := in.roll(in.cfg.Loss)
	corrupt := in.roll(in.cfg.Corrupt)
	v.truncate = in.roll(in.cfg.Truncate)
	v.duplicate = in.roll(in.cfg.Duplicate)
	v.reorder = in.roll(in.cfg.Reorder)
	switch {
	case lostQ:
		in.st.DroppedQueries++
		v.outcome = outcomeDropQuery
	case lostR:
		in.st.DroppedResponses++
		v.outcome = outcomeDropResponse
	case corrupt:
		in.st.Corrupted++
		v.outcome = outcomeCorrupt
	default:
		if v.truncate {
			in.st.Truncated++
		}
		if v.duplicate {
			in.st.Duplicated++
		}
		if v.reorder {
			in.st.Reordered++
		}
	}
	return v
}

// roll consumes one RNG draw and compares it to p. p <= 0 still
// consumes a draw, keeping the decision stream seed-stable as
// individual impairments are toggled on and off — only when the whole
// probability is structurally absent (handled by callers) is a draw
// skipped.
func (in *Injector) roll(p float64) bool {
	return in.rng.Float64() < p
}
