package faults

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/zonedb"
)

func startUpstream(t *testing.T) *authserver.Server {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 200, 0, 0.5, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := authserver.Listen("127.0.0.1:0", authserver.NewEngine(z))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func startProxy(t *testing.T, up *authserver.Server, cfg Config) *Proxy {
	t.Helper()
	p, err := NewProxy("127.0.0.1:0", up.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestProxyPassesCleanTraffic(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up, Config{})
	r := resolver.New("nl.", resolver.Config{EDNSSize: 1232})
	r.AddUpstream(resolver.FamilyV4, &resolver.NetTransport{Server: p.Addr(), Timeout: 2 * time.Second})
	for i := 0; i < 10; i++ {
		res, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delegation == "" {
			t.Fatalf("no delegation for d%d", i)
		}
	}
	if st := p.Stats(); st.Exchanges != 10 || st.Total() != 0 {
		t.Errorf("proxy stats = %+v", st)
	}
}

// TestProxyDuplicationAndCorruptionTolerated drives the hardened
// NetTransport through a proxy that duplicates every response and
// corrupts some: the resolver must survive on retries, discarding
// mismatched-ID datagrams and late duplicates as strays.
func TestProxyDuplicationAndCorruptionTolerated(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up, Config{
		Duplicate: 1, Corrupt: 0.3, Timeout: 100 * time.Millisecond, Seed: 3,
	})
	tr := &resolver.NetTransport{Server: p.Addr(), Timeout: 150 * time.Millisecond}
	r := resolver.New("nl.", resolver.Config{EDNSSize: 1232, Retries: 6, Seed: 3})
	r.AddUpstream(resolver.FamilyV4, tr)
	for i := 0; i < 12; i++ {
		if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatalf("lookup %d failed under duplication+corruption: %v", i, err)
		}
	}
	st := p.Stats()
	if st.Duplicated == 0 {
		t.Error("no duplicated responses injected")
	}
	if st.Corrupted == 0 {
		t.Error("no corrupted responses injected")
	}
	if tr.StrayDatagrams() == 0 {
		t.Error("hardened transport saw no strays despite 100% duplication")
	}
}

func TestProxyTCPRelayAndBrownout(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up, Config{})
	// A 512-byte validating resolver truncates on signed referrals and
	// retries over TCP: the relay must carry the framed stream intact.
	r := resolver.New("nl.", resolver.Config{Validate: true, EDNSSize: 512, Retries: 2})
	r.AddUpstream(resolver.FamilyV4, &resolver.NetTransport{Server: p.Addr(), Timeout: 2 * time.Second})
	for i := 0; i < 8; i++ {
		if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.ByTCP[true] == 0 {
		t.Fatal("no TCP retries crossed the proxy")
	}
}

func TestProxyServfailBrownout(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up, Config{
		Brownout: Brownout{Every: 1, Len: 1, Mode: BrownoutServfail},
	})
	// Every exchange past the first is browned out; with RetryServfail
	// the resolver retries, then surfaces the SERVFAIL answer.
	r := resolver.New("nl.", resolver.Config{EDNSSize: 1232, Retries: 2, RetryServfail: true})
	r.AddUpstream(resolver.FamilyV4, &resolver.NetTransport{Server: p.Addr(), Timeout: 2 * time.Second})
	if _, err := r.Resolve("www.d1.nl.", dnswire.TypeA); err != nil {
		t.Fatalf("first (clean) lookup: %v", err)
	}
	res, err := r.Resolve("www.d2.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("browned-out lookup must complete with SERVFAIL, got error: %v", err)
	}
	if res.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %s, want SERVFAIL", res.RCode)
	}
	if st := r.Stats(); st.ServfailRetries == 0 {
		t.Error("no servfail retries counted")
	}
}

// TestProxyCountsUDPWriteErrors relays a response toward an
// undeliverable client address (port 0 ⇒ EINVAL on the sendto) and
// checks the failure is counted, not just logged — previously these
// losses were invisible in the fault accounting.
func TestProxyCountsUDPWriteErrors(t *testing.T) {
	up := startUpstream(t)
	reg := telemetry.New()
	p := startProxy(t, up, Config{Telemetry: reg})
	q := dnswire.NewQuery(9, "www.d1.nl.", dnswire.TypeA).WithEdns(1232, false)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	p.RelayUDPForTest(wire, netip.MustParseAddrPort("127.0.0.1:0"))
	if got := p.UDPWriteErrors(); got != 1 {
		t.Fatalf("UDPWriteErrors = %d, want 1", got)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "faults_proxy_udp_write_errors_total 1") {
		t.Errorf("registry missing write-error counter:\n%s", buf.String())
	}
}

func TestServfailWire(t *testing.T) {
	q := dnswire.NewQuery(77, "www.d1.nl.", dnswire.TypeA).WithEdns(1232, false)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := servfailWire(wire)
	if out == nil {
		t.Fatal("no servfail built")
	}
	m, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatalf("servfail wire does not parse: %v", err)
	}
	if m.Header.ID != 77 || !m.Header.Response || m.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("header = %+v", m.Header)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "www.d1.nl." {
		t.Fatalf("questions = %v", m.Questions)
	}
	if servfailWire([]byte{1, 2, 3}) != nil {
		t.Error("short query produced a servfail")
	}
}
