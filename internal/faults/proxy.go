package faults

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a real-socket impairment shim: it listens on UDP+TCP (same
// port, mirroring authserver.Listen) and forwards to an upstream DNS
// server, applying the impairment plan to actual datagrams and byte
// streams. Unlike the in-process Transport, concurrent clients race for
// RNG draws, so cross-run determinism holds only for sequential
// clients; per-packet decisions are still fully seed-driven.
type Proxy struct {
	inj      *Injector
	upstream netip.AddrPort

	udp *net.UDPConn
	tcp *net.TCPListener

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// udpWriteErrs counts datagrams the proxy meant to deliver to a
	// client but could not write — errors that were previously logged
	// (at best) and otherwise invisible in the fault accounting.
	udpWriteErrs atomic.Uint64

	// Logf, when non-nil, receives per-error diagnostics.
	Logf func(format string, args ...any)
}

// NewProxy starts an impairment proxy on addr (e.g. "127.0.0.1:0")
// forwarding to upstream.
func NewProxy(addr string, upstream netip.AddrPort, cfg Config) (*Proxy, error) {
	tcpLn, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("faults: proxy tcp listen: %w", err)
	}
	udpConn, err := net.ListenUDP("udp", &net.UDPAddr{
		IP:   tcpLn.Addr().(*net.TCPAddr).IP,
		Port: tcpLn.Addr().(*net.TCPAddr).Port,
	})
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("faults: proxy udp listen: %w", err)
	}
	p := &Proxy{
		inj:      NewInjector(cfg),
		upstream: upstream,
		udp:      udpConn,
		tcp:      tcpLn.(*net.TCPListener),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		reg.CounterFunc("faults_proxy_udp_write_errors_total", p.udpWriteErrs.Load)
	}
	p.wg.Add(2)
	go p.serveUDP()
	go p.serveTCP()
	return p, nil
}

// Addr returns the impaired address clients should use.
func (p *Proxy) Addr() netip.AddrPort {
	return p.udp.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Stats returns the injected-fault counters.
func (p *Proxy) Stats() Stats { return p.inj.Stats() }

// UDPWriteErrors counts response datagrams lost to client-side write
// failures — losses the impairment plan did not ask for.
func (p *Proxy) UDPWriteErrors() uint64 { return p.udpWriteErrs.Load() }

// Close stops the proxy, severing in-flight TCP relays. Safe to call
// more than once.
func (p *Proxy) Close() error {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.udp.Close()
		p.tcp.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return nil
}

func (p *Proxy) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

func (p *Proxy) serveUDP() {
	defer p.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := p.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
				p.logf("proxy udp read: %v", err)
				continue
			}
		}
		pkt := append([]byte(nil), buf[:n]...)
		p.wg.Add(1)
		go p.relayUDP(pkt, raddr)
	}
}

// relayUDP carries one client datagram through the impairment plan.
func (p *Proxy) relayUDP(query []byte, client netip.AddrPort) {
	defer p.wg.Done()
	v := p.inj.plan(false)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	switch v.outcome {
	case outcomeDropQuery, outcomeBrownoutDrop:
		return
	case outcomeBrownoutServfail:
		if resp := servfailWire(query); resp != nil {
			if _, err := p.udp.WriteToUDPAddrPort(resp, client); err != nil {
				p.udpWriteErrs.Add(1)
				p.logf("proxy udp servfail write: %v", err)
			}
		}
		return
	}
	up, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(p.upstream))
	if err != nil {
		p.logf("proxy udp dial: %v", err)
		return
	}
	defer up.Close()
	_ = up.SetDeadline(time.Now().Add(2 * v.timeout))
	if _, err := up.Write(query); err != nil {
		p.logf("proxy udp forward: %v", err)
		return
	}
	rbuf := make([]byte, 65535)
	n, err := up.Read(rbuf)
	if err != nil {
		return // upstream really timed out; the client sees silence
	}
	resp := rbuf[:n]
	switch v.outcome {
	case outcomeDropResponse:
		return
	case outcomeCorrupt:
		// Flip the message ID and scramble a flags byte: a hardened
		// client must discard this as a mismatched/unparseable datagram.
		if len(resp) >= 3 {
			resp[0] ^= 0xFF
			resp[1] ^= 0xFF
			resp[2] ^= 0x55
		}
	}
	if v.truncate && len(resp) >= 3 {
		resp[2] |= 0x02 // TC bit
	}
	if v.reorder {
		time.Sleep(v.timeout / 2)
	}
	sends := 1
	if v.duplicate {
		sends = 2
	}
	for i := 0; i < sends; i++ {
		if _, err := p.udp.WriteToUDPAddrPort(resp, client); err != nil {
			p.udpWriteErrs.Add(1)
			p.logf("proxy udp write: %v", err)
			return
		}
	}
}

func (p *Proxy) serveTCP() {
	defer p.wg.Done()
	for {
		conn, err := p.tcp.AcceptTCP()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
				p.logf("proxy tcp accept: %v", err)
				continue
			}
		}
		p.wg.Add(1)
		go p.relayTCP(conn)
	}
}

// relayTCP impairs at connection granularity: failed or browned-out
// connections are severed immediately; surviving ones are relayed
// byte-for-byte, preserving DNS message framing end to end.
func (p *Proxy) relayTCP(conn *net.TCPConn) {
	defer p.wg.Done()
	untrack := p.track(conn)
	defer untrack()
	defer conn.Close()
	v := p.inj.plan(true)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	switch v.outcome {
	case outcomeTCPFail, outcomeBrownoutDrop, outcomeDropQuery, outcomeDropResponse:
		return
	}
	up, err := net.DialTCP("tcp", nil, net.TCPAddrFromAddrPort(p.upstream))
	if err != nil {
		p.logf("proxy tcp dial: %v", err)
		return
	}
	untrackUp := p.track(up)
	defer untrackUp()
	defer up.Close()
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(up, conn); up.CloseWrite(); done <- struct{}{} }()
	go func() { _, _ = io.Copy(conn, up); conn.CloseWrite(); done <- struct{}{} }()
	<-done
	<-done
}

// servfailWire builds a minimal SERVFAIL answer for a raw wire query:
// header + question echo with QR set, RCODE=2 and every other section
// dropped.
func servfailWire(query []byte) []byte {
	if len(query) < 12 {
		return nil
	}
	qd := int(query[4])<<8 | int(query[5])
	end := 12
	for i := 0; i < qd; i++ {
		// Walk the uncompressed QNAME, then TYPE+CLASS.
		for end < len(query) && query[end] != 0 {
			if query[end]&0xC0 != 0 {
				return nil // compressed name in a query: give up
			}
			end += int(query[end]) + 1
		}
		end += 1 + 4
		if end > len(query) {
			return nil
		}
	}
	out := append([]byte(nil), query[:end]...)
	out[2] = (out[2] | 0x80) &^ 0x02 // QR=1, TC=0
	out[3] = (out[3] &^ 0x0F) | 0x02 // RCODE=SERVFAIL
	// Zero the answer/authority/additional counts; keep QDCOUNT.
	for i := 6; i < 12; i++ {
		out[i] = 0
	}
	return out
}
