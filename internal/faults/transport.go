package faults

import (
	"errors"
	"fmt"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
)

// Errors surfaced by impaired exchanges. They unwrap to
// ErrInjected so consumers can distinguish injected faults from real
// transport failures.
var (
	ErrInjected = errors.New("faults: injected")
	// ErrTimeout is an exchange lost to packet drop or a silent brownout.
	ErrTimeout = fmt.Errorf("%w timeout", ErrInjected)
	// ErrCorrupt is a response damaged beyond parsing.
	ErrCorrupt = fmt.Errorf("%w corruption, response discarded", ErrInjected)
	// ErrConnRefused is an injected TCP connection failure.
	ErrConnRefused = fmt.Errorf("%w TCP connection failure", ErrInjected)
)

// Transport wraps an inner resolver.Transport with the impairment
// layer. Timing side effects (added latency, the timeout charged to a
// lost exchange, reorder delay) are reported through the Advance hook,
// which a simulation points at its virtual clock; a nil hook skips the
// waits, which keeps real-socket CLI runs fast while the decision
// stream — and therefore every counter — stays seed-deterministic.
type Transport struct {
	inner   resolver.Transport
	inj     *Injector
	advance func(time.Duration)
}

// WrapTransport builds the impaired transport. advance may be nil.
func WrapTransport(inner resolver.Transport, inj *Injector, advance func(time.Duration)) *Transport {
	return &Transport{inner: inner, inj: inj, advance: advance}
}

// Injector exposes the decision core (for stats).
func (t *Transport) Injector() *Injector { return t.inj }

func (t *Transport) wait(d time.Duration) {
	if t.advance != nil && d > 0 {
		t.advance(d)
	}
}

// Exchange implements resolver.Transport.
func (t *Transport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	return t.exchange(q, tcp, func() (*dnswire.Message, time.Duration, error) {
		return t.inner.Exchange(q, tcp)
	})
}

// ExchangeDeadline implements resolver.DeadlineTransport when the inner
// transport does; otherwise the deadline is ignored and the plain
// Exchange path is used.
func (t *Transport) ExchangeDeadline(q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	if dt, ok := t.inner.(resolver.DeadlineTransport); ok {
		return t.exchange(q, tcp, func() (*dnswire.Message, time.Duration, error) {
			return dt.ExchangeDeadline(q, tcp, timeout)
		})
	}
	return t.Exchange(q, tcp)
}

func (t *Transport) exchange(q *dnswire.Message, tcp bool, inner func() (*dnswire.Message, time.Duration, error)) (*dnswire.Message, time.Duration, error) {
	v := t.inj.plan(tcp)
	t.wait(v.delay)
	switch v.outcome {
	case outcomeBrownoutServfail:
		// The server is up but overloaded: it answers instantly with
		// SERVFAIL and the query never hits the normal answer path.
		return servfail(q), v.delay, nil
	case outcomeBrownoutDrop:
		if !tcp {
			// The query reaches the degraded server (so a server-side
			// capture would show it) but no response comes back.
			_, _, _ = inner()
		}
		t.wait(v.timeout)
		return nil, v.timeout, ErrTimeout
	case outcomeTCPFail:
		t.wait(v.timeout)
		return nil, v.timeout, ErrConnRefused
	case outcomeDropQuery:
		// Lost before the server: nothing observable at the vantage.
		t.wait(v.timeout)
		return nil, v.timeout, ErrTimeout
	case outcomeDropResponse:
		_, _, _ = inner()
		t.wait(v.timeout)
		return nil, v.timeout, ErrTimeout
	case outcomeCorrupt:
		_, _, _ = inner()
		return nil, 0, ErrCorrupt
	}
	resp, rtt, err := inner()
	if err != nil {
		return nil, rtt, err
	}
	if v.reorder {
		// Delivered late, behind unrelated traffic.
		t.wait(v.timeout / 2)
		rtt += v.timeout / 2
	}
	if !tcp && v.truncate && !resp.Header.Truncated {
		resp.Header.Truncated = true
		// A truncated datagram carries no usable sections.
		resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
	}
	// Duplication delivers a second copy the hardened client discards;
	// only the counter observes it on the in-process path (the socket
	// proxy really sends two datagrams).
	return resp, rtt + v.delay, nil
}

// servfail builds the degraded server's immediate SERVFAIL answer.
func servfail(q *dnswire.Message) *dnswire.Message {
	r := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			Opcode:           q.Header.Opcode,
			RecursionDesired: q.Header.RecursionDesired,
			RCode:            dnswire.RCodeServFail,
		},
		Questions: append([]dnswire.Question(nil), q.Questions...),
	}
	return r
}
