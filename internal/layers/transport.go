package layers

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // as decoded: header + payload
	Checksum         uint16 // as decoded; recomputed on encode
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// DecodeFromBytes parses the header and returns the payload, honoring the
// UDP length field.
func (u *UDP) DecodeFromBytes(b []byte) (payload []byte, err error) {
	if len(b) < UDPHeaderLen {
		return nil, fmt.Errorf("udp: %w", ErrTooShort)
	}
	u.SrcPort = binary.BigEndian.Uint16(b)
	u.DstPort = binary.BigEndian.Uint16(b[2:])
	u.Length = binary.BigEndian.Uint16(b[4:])
	u.Checksum = binary.BigEndian.Uint16(b[6:])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return nil, fmt.Errorf("udp: %w: len=%d buf=%d", ErrBadLength, u.Length, len(b))
	}
	return b[UDPHeaderLen:u.Length], nil
}

// AppendSegment appends header+payload to b with a correct checksum
// computed over the pseudo-header for src/dst.
func (u *UDP) AppendSegment(b []byte, src, dst netip.Addr, payload []byte) ([]byte, error) {
	l4len := UDPHeaderLen + len(payload)
	if l4len > 0xFFFF {
		return nil, fmt.Errorf("udp: %w: len=%d", ErrBadLength, l4len)
	}
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(l4len))
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, payload...)
	cs := onesComplementChecksum(b[start:], pseudoHeaderSum(src, dst, IPProtoUDP, l4len))
	if cs == 0 {
		cs = 0xFFFF // RFC 768: zero checksum means "not computed"
	}
	binary.BigEndian.PutUint16(b[start+6:], cs)
	return b, nil
}

// VerifyChecksum recomputes the checksum of a decoded UDP segment (header
// bytes hdr, already including the stored checksum) against the
// pseudo-header.
func VerifyUDPChecksum(src, dst netip.Addr, segment []byte) bool {
	if len(segment) < UDPHeaderLen {
		return false
	}
	stored := binary.BigEndian.Uint16(segment[6:])
	if stored == 0 {
		return true // sender did not compute one (IPv4 only, but accept)
	}
	sum := onesComplementChecksum(segment, pseudoHeaderSum(src, dst, IPProtoUDP, len(segment)))
	return sum == 0
}

// TCP flag bits.
const (
	TCPFlagFIN uint8 = 1 << 0
	TCPFlagSYN uint8 = 1 << 1
	TCPFlagRST uint8 = 1 << 2
	TCPFlagPSH uint8 = 1 << 3
	TCPFlagACK uint8 = 1 << 4
)

// TCP is a TCP header (options preserved as raw bytes).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

// TCPHeaderLen is the length of an option-less TCP header.
const TCPHeaderLen = 20

// SYN, ACK, FIN, RST report individual flags.
func (t *TCP) SYN() bool { return t.Flags&TCPFlagSYN != 0 }

// ACK reports the ACK flag.
func (t *TCP) ACK() bool { return t.Flags&TCPFlagACK != 0 }

// FIN reports the FIN flag.
func (t *TCP) FIN() bool { return t.Flags&TCPFlagFIN != 0 }

// RST reports the RST flag.
func (t *TCP) RST() bool { return t.Flags&TCPFlagRST != 0 }

// DecodeFromBytes parses the header and returns the payload.
func (t *TCP) DecodeFromBytes(b []byte) (payload []byte, err error) {
	if len(b) < TCPHeaderLen {
		return nil, fmt.Errorf("tcp: %w", ErrTooShort)
	}
	t.SrcPort = binary.BigEndian.Uint16(b)
	t.DstPort = binary.BigEndian.Uint16(b[2:])
	t.Seq = binary.BigEndian.Uint32(b[4:])
	t.Ack = binary.BigEndian.Uint32(b[8:])
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(b) {
		return nil, fmt.Errorf("tcp: %w: dataoff=%d", ErrBadLength, dataOff)
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:])
	t.Checksum = binary.BigEndian.Uint16(b[16:])
	t.Urgent = binary.BigEndian.Uint16(b[18:])
	t.Options = b[TCPHeaderLen:dataOff]
	return b[dataOff:], nil
}

// AppendSegment appends header+payload to b with a correct checksum.
// Options must be a multiple of 4 bytes.
func (t *TCP) AppendSegment(b []byte, src, dst netip.Addr, payload []byte) ([]byte, error) {
	if len(t.Options)%4 != 0 {
		return nil, fmt.Errorf("tcp: %w: options %d bytes", ErrBadLength, len(t.Options))
	}
	hdrLen := TCPHeaderLen + len(t.Options)
	if hdrLen > 60 {
		return nil, fmt.Errorf("tcp: %w: header %d bytes", ErrBadLength, hdrLen)
	}
	l4len := hdrLen + len(payload)
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, byte(hdrLen/4)<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	b = append(b, t.Options...)
	b = append(b, payload...)
	cs := onesComplementChecksum(b[start:], pseudoHeaderSum(src, dst, IPProtoTCP, l4len))
	binary.BigEndian.PutUint16(b[start+16:], cs)
	return b, nil
}

// VerifyTCPChecksum recomputes the checksum of a decoded TCP segment.
func VerifyTCPChecksum(src, dst netip.Addr, segment []byte) bool {
	if len(segment) < TCPHeaderLen {
		return false
	}
	sum := onesComplementChecksum(segment, pseudoHeaderSum(src, dst, IPProtoTCP, len(segment)))
	return sum == 0
}
