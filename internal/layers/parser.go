package layers

import (
	"fmt"
	"net/netip"
)

// Parser decodes an Ethernet/IP/UDP-or-TCP stack into preallocated layer
// structs, gopacket DecodingLayerParser style: one Parser is reused across
// packets and Decode performs no per-packet heap allocation.
type Parser struct {
	Eth  Ethernet
	IP4  IPv4
	IP6  IPv6
	UDP  UDP
	TCP  TCP
	// Decoded lists the layers found, in order, after a successful Decode.
	Decoded []LayerType
	// Payload is the innermost payload (L4 payload) after Decode.
	Payload []byte
}

// NewParser returns a ready Parser.
func NewParser() *Parser {
	return &Parser{Decoded: make([]LayerType, 0, 4)}
}

// Flow summarizes the addressing of a decoded packet.
type Flow struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8 // IPProtoUDP or IPProtoTCP
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// String renders the flow as "src:sp > dst:dp/proto".
func (f Flow) String() string {
	proto := "udp"
	if f.Proto == IPProtoTCP {
		proto = "tcp"
	}
	return fmt.Sprintf("%s > %s/%s",
		netip.AddrPortFrom(f.Src, f.SrcPort), netip.AddrPortFrom(f.Dst, f.DstPort), proto)
}

// IsIPv6 reports whether the flow's network layer is IPv6.
func (f Flow) IsIPv6() bool { return f.Src.Is6() && !f.Src.Is4In6() }

// Decode parses one Ethernet frame. It returns the flow and fills
// p.Decoded and p.Payload. Unknown ethertypes or IP protocols yield an
// error identifying the layer reached.
func (p *Parser) Decode(frame []byte) (Flow, error) {
	p.Decoded = p.Decoded[:0]
	p.Payload = nil
	var flow Flow

	rest, err := p.Eth.DecodeFromBytes(frame)
	if err != nil {
		return flow, err
	}
	p.Decoded = append(p.Decoded, LayerTypeEthernet)

	var proto uint8
	switch p.Eth.EtherType {
	case EtherTypeIPv4:
		if rest, err = p.IP4.DecodeFromBytes(rest); err != nil {
			return flow, err
		}
		p.Decoded = append(p.Decoded, LayerTypeIPv4)
		flow.Src, flow.Dst = p.IP4.Src, p.IP4.Dst
		proto = p.IP4.Protocol
	case EtherTypeIPv6:
		if rest, err = p.IP6.DecodeFromBytes(rest); err != nil {
			return flow, err
		}
		p.Decoded = append(p.Decoded, LayerTypeIPv6)
		flow.Src, flow.Dst = p.IP6.Src, p.IP6.Dst
		proto = p.IP6.NextHeader
	default:
		return flow, fmt.Errorf("layers: unsupported ethertype 0x%04x", p.Eth.EtherType)
	}

	switch proto {
	case IPProtoUDP:
		if rest, err = p.UDP.DecodeFromBytes(rest); err != nil {
			return flow, err
		}
		p.Decoded = append(p.Decoded, LayerTypeUDP)
		flow.SrcPort, flow.DstPort, flow.Proto = p.UDP.SrcPort, p.UDP.DstPort, IPProtoUDP
	case IPProtoTCP:
		if rest, err = p.TCP.DecodeFromBytes(rest); err != nil {
			return flow, err
		}
		p.Decoded = append(p.Decoded, LayerTypeTCP)
		flow.SrcPort, flow.DstPort, flow.Proto = p.TCP.SrcPort, p.TCP.DstPort, IPProtoTCP
	default:
		return flow, fmt.Errorf("layers: unsupported IP protocol %d", proto)
	}
	p.Payload = rest
	p.Decoded = append(p.Decoded, LayerTypePayload)
	return flow, nil
}

// defaultMACs used by the frame builders; the analysis never looks at L2
// addresses, but frames must still be well-formed.
var (
	builderSrcMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	builderDstMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// BuildUDP builds a complete Ethernet/IPvX/UDP frame carrying payload
// from src to dst. The IP version is chosen from the address family.
func BuildUDP(src, dst netip.AddrPort, payload []byte) ([]byte, error) {
	return AppendUDP(make([]byte, 0, EthernetHeaderLen+IPv6HeaderLen+UDPHeaderLen+len(payload)), src, dst, payload)
}

// AppendUDP appends a complete Ethernet/IPvX/UDP frame to b, producing the
// same bytes as BuildUDP with no intermediate allocation — the zero-copy
// variant for hot loops appending into a reused arena.
func AppendUDP(b []byte, src, dst netip.AddrPort, payload []byte) ([]byte, error) {
	b, srcA, dstA, err := appendFramePrefix(b, src, dst, IPProtoUDP, UDPHeaderLen+len(payload))
	if err != nil {
		return nil, err
	}
	u := UDP{SrcPort: src.Port(), DstPort: dst.Port()}
	return u.AppendSegment(b, srcA, dstA, payload)
}

// TCPMeta carries the TCP header fields a builder caller controls.
type TCPMeta struct {
	Seq, Ack uint32
	Flags    uint8
	Window   uint16
}

// BuildTCP builds a complete Ethernet/IPvX/TCP frame.
func BuildTCP(src, dst netip.AddrPort, meta TCPMeta, payload []byte) ([]byte, error) {
	return AppendTCP(make([]byte, 0, EthernetHeaderLen+IPv6HeaderLen+TCPHeaderLen+len(payload)), src, dst, meta, payload)
}

// AppendTCP appends a complete Ethernet/IPvX/TCP frame to b; see AppendUDP.
func AppendTCP(b []byte, src, dst netip.AddrPort, meta TCPMeta, payload []byte) ([]byte, error) {
	b, srcA, dstA, err := appendFramePrefix(b, src, dst, IPProtoTCP, TCPHeaderLen+len(payload))
	if err != nil {
		return nil, err
	}
	t := TCP{
		SrcPort: src.Port(), DstPort: dst.Port(),
		Seq: meta.Seq, Ack: meta.Ack, Flags: meta.Flags, Window: meta.Window,
	}
	if t.Window == 0 {
		t.Window = 65535
	}
	return t.AppendSegment(b, srcA, dstA, payload)
}

// appendFramePrefix appends the Ethernet and IP headers for an L4 segment
// of l4len bytes and returns the unmapped addresses for the L4 checksum.
func appendFramePrefix(b []byte, src, dst netip.AddrPort, proto uint8, l4len int) ([]byte, netip.Addr, netip.Addr, error) {
	srcA, dstA := src.Addr().Unmap(), dst.Addr().Unmap()
	v6 := srcA.Is6()
	if v6 != (dstA.Is6()) {
		return nil, srcA, dstA, fmt.Errorf("layers: address family mismatch %s -> %s", srcA, dstA)
	}
	eth := Ethernet{Dst: builderDstMAC, Src: builderSrcMAC}
	var err error
	if v6 {
		eth.EtherType = EtherTypeIPv6
		b = eth.AppendHeader(b)
		ip := IPv6{NextHeader: proto, HopLimit: 58, Src: srcA, Dst: dstA}
		b, err = ip.AppendHeader(b, l4len)
	} else {
		eth.EtherType = EtherTypeIPv4
		b = eth.AppendHeader(b)
		ip := IPv4{TTL: 58, Protocol: proto, Src: srcA, Dst: dstA}
		b, err = ip.AppendHeader(b, l4len)
	}
	if err != nil {
		return nil, srcA, dstA, err
	}
	return b, srcA, dstA, nil
}
