package layers

import (
	"bytes"
	"testing"
)

// FuzzParserDecode checks the layer parser never panics and that the
// payload it returns is in-bounds.
func FuzzParserDecode(f *testing.F) {
	u, _ := BuildUDP(v4a, v4b, []byte("payload"))
	f.Add(u)
	tc, _ := BuildTCP(v6a, v6b, TCPMeta{Flags: TCPFlagSYN}, nil)
	f.Add(tc)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x45}, 64))

	p := NewParser()
	f.Fuzz(func(t *testing.T, data []byte) {
		flow, err := p.Decode(data)
		if err != nil {
			return
		}
		if !flow.Src.IsValid() || !flow.Dst.IsValid() {
			t.Fatal("decoded flow has invalid addresses")
		}
		if len(p.Payload) > len(data) {
			t.Fatal("payload longer than frame")
		}
	})
}

// FuzzChecksumVerification checks that verification never panics and that
// freshly built frames always verify.
func FuzzChecksumVerification(f *testing.F) {
	f.Add([]byte("some payload"), true)
	f.Add([]byte{}, false)
	p := NewParser()
	f.Fuzz(func(t *testing.T, payload []byte, v6 bool) {
		if len(payload) > 1200 {
			return
		}
		src, dst := v4a, v4b
		if v6 {
			src, dst = v6a, v6b
		}
		frame, err := BuildUDP(src, dst, payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Decode(frame); err != nil {
			t.Fatal(err)
		}
		var eth Ethernet
		rest, _ := eth.DecodeFromBytes(frame)
		if v6 {
			var ip IPv6
			seg, err := ip.DecodeFromBytes(rest)
			if err != nil || !VerifyUDPChecksum(ip.Src, ip.Dst, seg) {
				t.Fatalf("v6 checksum: %v", err)
			}
		} else {
			var ip IPv4
			seg, err := ip.DecodeFromBytes(rest)
			if err != nil || !VerifyUDPChecksum(ip.Src, ip.Dst, seg) {
				t.Fatalf("v4 checksum: %v", err)
			}
		}
	})
}
