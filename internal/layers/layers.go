// Package layers implements encoding and decoding for the link, network and
// transport layers the reproduction's traces are made of: Ethernet II,
// IPv4, IPv6, UDP and TCP, with correct checksums.
//
// The design follows gopacket's DecodingLayerParser idiom: preallocated
// layer structs are decoded in place (DecodeFromBytes) so a hot analysis
// loop does not allocate per packet, and serialization prepends layers so a
// packet is built from the payload outward.
package layers

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors shared across layer decoders.
var (
	ErrTooShort   = errors.New("layers: buffer too short")
	ErrBadVersion = errors.New("layers: wrong IP version")
	ErrBadIHL     = errors.New("layers: bad IPv4 header length")
	ErrBadLength  = errors.New("layers: bad length field")
)

// LayerType discriminates decoded layers.
type LayerType uint8

// Layer types produced by Parser.
const (
	LayerTypeNone LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeUDP
	LayerTypeTCP
	LayerTypePayload
)

// String names the layer type.
func (lt LayerType) String() string {
	switch lt {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	}
	return "None"
}

// EtherType values used here.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers used here.
const (
	IPProtoTCP uint8 = 6
	IPProtoUDP uint8 = 17
)

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

// String formats the address in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// EthernetHeaderLen is the length of an Ethernet II header.
const EthernetHeaderLen = 14

// DecodeFromBytes parses the header and returns the payload.
func (e *Ethernet) DecodeFromBytes(b []byte) (payload []byte, err error) {
	if len(b) < EthernetHeaderLen {
		return nil, fmt.Errorf("ethernet: %w", ErrTooShort)
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[EthernetHeaderLen:], nil
}

// AppendHeader appends the wire header to b.
func (e *Ethernet) AppendHeader(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// IPv4 is an IPv4 header without options support on encode (IHL=5); options
// are skipped on decode.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	// Length is the total length field as decoded (header + payload).
	Length uint16
	// Checksum as decoded; recomputed on encode.
	Checksum uint16
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// DecodeFromBytes parses the header and returns the payload, honoring the
// total-length field (trailing link padding is stripped).
func (ip *IPv4) DecodeFromBytes(b []byte) (payload []byte, err error) {
	if len(b) < IPv4HeaderLen {
		return nil, fmt.Errorf("ipv4: %w", ErrTooShort)
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("ipv4: %w: %d", ErrBadVersion, b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || ihl > len(b) {
		return nil, fmt.Errorf("ipv4: %w: ihl=%d", ErrBadIHL, ihl)
	}
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:])
	if int(ip.Length) < ihl || int(ip.Length) > len(b) {
		return nil, fmt.Errorf("ipv4: %w: total=%d buf=%d", ErrBadLength, ip.Length, len(b))
	}
	ip.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1FFF
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:])
	ip.Src = netip.AddrFrom4([4]byte(b[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return b[ihl:ip.Length], nil
}

// AppendHeader appends a 20-byte header for a payload of payloadLen bytes,
// computing the header checksum.
func (ip *IPv4) AppendHeader(b []byte, payloadLen int) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("ipv4: %w: src=%s dst=%s", ErrBadVersion, ip.Src, ip.Dst)
	}
	total := IPv4HeaderLen + payloadLen
	if total > 0xFFFF {
		return nil, fmt.Errorf("ipv4: %w: total=%d", ErrBadLength, total)
	}
	start := len(b)
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1FFF)
	b = append(b, ip.TTL, ip.Protocol, 0, 0) // checksum placeholder
	src, dst := ip.Src.As4(), ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	cs := onesComplementChecksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+10:], cs)
	return b, nil
}

// IPv6 is a fixed IPv6 header; extension headers are not generated and are
// rejected on decode except for hop-by-hop skipping being unnecessary in our
// traces.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
	// PayloadLength as decoded.
	PayloadLength uint16
}

// IPv6HeaderLen is the length of the fixed IPv6 header.
const IPv6HeaderLen = 40

// DecodeFromBytes parses the header and returns the payload.
func (ip *IPv6) DecodeFromBytes(b []byte) (payload []byte, err error) {
	if len(b) < IPv6HeaderLen {
		return nil, fmt.Errorf("ipv6: %w", ErrTooShort)
	}
	if b[0]>>4 != 6 {
		return nil, fmt.Errorf("ipv6: %w: %d", ErrBadVersion, b[0]>>4)
	}
	vtf := binary.BigEndian.Uint32(b[0:4])
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xFFFFF
	ip.PayloadLength = binary.BigEndian.Uint16(b[4:])
	ip.NextHeader = b[6]
	ip.HopLimit = b[7]
	ip.Src = netip.AddrFrom16([16]byte(b[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	end := IPv6HeaderLen + int(ip.PayloadLength)
	if end > len(b) {
		return nil, fmt.Errorf("ipv6: %w: payload=%d buf=%d", ErrBadLength, ip.PayloadLength, len(b))
	}
	return b[IPv6HeaderLen:end], nil
}

// AppendHeader appends the 40-byte header for a payload of payloadLen bytes.
func (ip *IPv6) AppendHeader(b []byte, payloadLen int) ([]byte, error) {
	if !ip.Src.Is6() || ip.Src.Is4In6() || !ip.Dst.Is6() || ip.Dst.Is4In6() {
		return nil, fmt.Errorf("ipv6: %w: src=%s dst=%s", ErrBadVersion, ip.Src, ip.Dst)
	}
	if payloadLen > 0xFFFF {
		return nil, fmt.Errorf("ipv6: %w: payload=%d", ErrBadLength, payloadLen)
	}
	vtf := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xFFFFF
	b = binary.BigEndian.AppendUint32(b, vtf)
	b = binary.BigEndian.AppendUint16(b, uint16(payloadLen))
	b = append(b, ip.NextHeader, ip.HopLimit)
	src, dst := ip.Src.As16(), ip.Dst.As16()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	return b, nil
}

// onesComplementChecksum computes the Internet checksum over b, seeded with
// sum (used to chain the pseudo-header).
func onesComplementChecksum(b []byte, sum uint32) uint16 {
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header partial sum for
// src/dst, protocol proto and L4 length l4len.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, l4len int) uint32 {
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
	}
	if src.Is4() {
		s4, d4 := src.As4(), dst.As4()
		add(s4[:])
		add(d4[:])
	} else {
		s16, d16 := src.As16(), dst.As16()
		add(s16[:])
		add(d16[:])
	}
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}
