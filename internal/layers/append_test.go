package layers

import (
	"bytes"
	"net/netip"
	"testing"
)

var appendCases = []struct {
	name     string
	src, dst netip.AddrPort
}{
	{"v4", netip.MustParseAddrPort("192.0.2.10:33000"), netip.MustParseAddrPort("198.51.100.1:53")},
	{"v6", netip.MustParseAddrPort("[2001:db8::10]:33000"), netip.MustParseAddrPort("[2001:500:1b::1]:53")},
	{"v4in6", netip.AddrPortFrom(netip.AddrFrom16(netip.MustParseAddr("192.0.2.10").As16()), 33000),
		netip.MustParseAddrPort("198.51.100.1:53")},
}

// TestAppendUDPMatchesBuild checks that appending into a reused, non-empty
// arena yields the exact frame a fresh Build produces.
func TestAppendUDPMatchesBuild(t *testing.T) {
	payload := []byte("payload bytes for checksum coverage")
	for _, tc := range appendCases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BuildUDP(tc.src, tc.dst, payload)
			if err != nil {
				t.Fatal(err)
			}
			arena := append(make([]byte, 0, 1024), "existing arena contents"...)
			prefix := len(arena)
			arena, err = AppendUDP(arena, tc.src, tc.dst, payload)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(arena[prefix:], want) {
				t.Fatal("AppendUDP into non-empty arena differs from BuildUDP")
			}
		})
	}
}

func TestAppendTCPMatchesBuild(t *testing.T) {
	payload := []byte{0x00, 0x04, 0xde, 0xad, 0xbe, 0xef}
	meta := TCPMeta{Seq: 0x01020304, Ack: 0x0a0b0c0d, Flags: TCPFlagPSH | TCPFlagACK}
	for _, tc := range appendCases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BuildTCP(tc.src, tc.dst, meta, payload)
			if err != nil {
				t.Fatal(err)
			}
			arena := append(make([]byte, 0, 1024), "existing arena contents"...)
			prefix := len(arena)
			arena, err = AppendTCP(arena, tc.src, tc.dst, meta, payload)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(arena[prefix:], want) {
				t.Fatal("AppendTCP into non-empty arena differs from BuildTCP")
			}
		})
	}
}

// TestAppendUDPNoAlloc checks the hot-loop property the workload emitter
// relies on: appending into a pre-grown arena does not allocate.
func TestAppendUDPNoAlloc(t *testing.T) {
	payload := []byte("steady state payload")
	arena := make([]byte, 0, 4096)
	src, dst := appendCases[0].src, appendCases[0].dst
	avg := testing.AllocsPerRun(100, func() {
		var err error
		arena, err = AppendUDP(arena[:0], src, dst, payload)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendUDP allocates %.1f times per frame, want 0", avg)
	}
}
