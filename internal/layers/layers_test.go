package layers

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	v4a = netip.MustParseAddrPort("192.0.2.10:53000")
	v4b = netip.MustParseAddrPort("198.51.100.53:53")
	v6a = netip.MustParseAddrPort("[2001:db8::10]:53000")
	v6b = netip.MustParseAddrPort("[2001:db8:ff::53]:53")
)

func TestBuildAndParseUDPv4(t *testing.T) {
	payload := []byte("dns-query-bytes")
	frame, err := BuildUDP(v4a, v4b, payload)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	flow, err := p.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if flow.Src != v4a.Addr() || flow.Dst != v4b.Addr() ||
		flow.SrcPort != 53000 || flow.DstPort != 53 || flow.Proto != IPProtoUDP {
		t.Errorf("flow = %+v", flow)
	}
	if flow.IsIPv6() {
		t.Error("v4 flow reported as v6")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q", p.Payload)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypePayload}
	if len(p.Decoded) != len(want) {
		t.Fatalf("decoded = %v", p.Decoded)
	}
	for i := range want {
		if p.Decoded[i] != want[i] {
			t.Errorf("decoded[%d] = %v, want %v", i, p.Decoded[i], want[i])
		}
	}
}

func TestBuildAndParseUDPv6(t *testing.T) {
	payload := []byte("v6-payload")
	frame, err := BuildUDP(v6a, v6b, payload)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	flow, err := p.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !flow.IsIPv6() {
		t.Error("v6 flow not detected")
	}
	if flow.Src != v6a.Addr() || flow.DstPort != 53 {
		t.Errorf("flow = %+v", flow)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q", p.Payload)
	}
}

func TestBuildAndParseTCP(t *testing.T) {
	meta := TCPMeta{Seq: 1000, Ack: 2000, Flags: TCPFlagSYN | TCPFlagACK}
	frame, err := BuildTCP(v4b, v4a, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser()
	flow, err := p.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if flow.Proto != IPProtoTCP || flow.SrcPort != 53 {
		t.Errorf("flow = %+v", flow)
	}
	if !p.TCP.SYN() || !p.TCP.ACK() || p.TCP.FIN() || p.TCP.RST() {
		t.Errorf("flags = %08b", p.TCP.Flags)
	}
	if p.TCP.Seq != 1000 || p.TCP.Ack != 2000 {
		t.Errorf("seq/ack = %d/%d", p.TCP.Seq, p.TCP.Ack)
	}
}

func TestUDPChecksumValid(t *testing.T) {
	frame, err := BuildUDP(v4a, v4b, []byte("check me"))
	if err != nil {
		t.Fatal(err)
	}
	var eth Ethernet
	rest, _ := eth.DecodeFromBytes(frame)
	var ip IPv4
	seg, err := ip.DecodeFromBytes(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyUDPChecksum(ip.Src, ip.Dst, seg) {
		t.Error("UDP checksum does not verify")
	}
	// Corrupt a payload byte: checksum must fail.
	seg2 := append([]byte(nil), seg...)
	seg2[len(seg2)-1] ^= 0xFF
	if VerifyUDPChecksum(ip.Src, ip.Dst, seg2) {
		t.Error("corrupted segment passed checksum")
	}
}

func TestTCPChecksumValid(t *testing.T) {
	frame, err := BuildTCP(v6a, v6b, TCPMeta{Flags: TCPFlagPSH | TCPFlagACK}, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	var eth Ethernet
	rest, _ := eth.DecodeFromBytes(frame)
	var ip IPv6
	seg, err := ip.DecodeFromBytes(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTCPChecksum(ip.Src, ip.Dst, seg) {
		t.Error("TCP checksum does not verify")
	}
	seg2 := append([]byte(nil), seg...)
	seg2[len(seg2)-2] ^= 0x01
	if VerifyTCPChecksum(ip.Src, ip.Dst, seg2) {
		t.Error("corrupted segment passed checksum")
	}
}

func TestIPv4ChecksumSelfConsistent(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtoUDP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	hdr, err := ip.AppendHeader(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Checksumming a header including its own checksum must give 0 (i.e.
	// onesComplementChecksum returns ^0 complement == 0).
	if got := onesComplementChecksum(hdr, 0); got != 0 {
		t.Errorf("header checksum residue = %#x", got)
	}
}

func TestFamilyMismatchRejected(t *testing.T) {
	if _, err := BuildUDP(v4a, v6b, nil); err == nil {
		t.Error("mixed-family frame accepted")
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	p := NewParser()
	for n := 0; n < 60; n += 7 {
		frame, _ := BuildUDP(v4a, v4b, []byte("payload-of-some-length"))
		if n >= len(frame) {
			break
		}
		if _, err := p.Decode(frame[:n]); err == nil {
			t.Errorf("truncated frame of %d bytes accepted", n)
		}
	}
}

func TestDecodeUnknownEtherType(t *testing.T) {
	eth := Ethernet{EtherType: 0x0806} // ARP
	frame := eth.AppendHeader(nil)
	frame = append(frame, make([]byte, 28)...)
	p := NewParser()
	if _, err := p.Decode(frame); err == nil {
		t.Error("ARP frame accepted")
	}
}

func TestDecodeUnknownIPProto(t *testing.T) {
	ip := IPv4{TTL: 1, Protocol: 1, // ICMP
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	eth := Ethernet{EtherType: EtherTypeIPv4}
	frame := eth.AppendHeader(nil)
	frame, err := ip.AppendHeader(frame, 8)
	if err != nil {
		t.Fatal(err)
	}
	frame = append(frame, make([]byte, 8)...)
	p := NewParser()
	if _, err := p.Decode(frame); err == nil {
		t.Error("ICMP packet accepted")
	}
}

func TestIPv4StripsLinkPadding(t *testing.T) {
	frame, err := BuildUDP(v4a, v4b, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate Ethernet minimum-size padding after the IP datagram.
	frame = append(frame, make([]byte, 18)...)
	p := NewParser()
	if _, err := p.Decode(frame); err != nil {
		t.Fatalf("padded frame rejected: %v", err)
	}
	if !bytes.Equal(p.Payload, []byte("x")) {
		t.Errorf("payload = %q", p.Payload)
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Src: v4a.Addr(), Dst: v4b.Addr(), SrcPort: 1234, DstPort: 53, Proto: IPProtoUDP}
	r := f.Reverse()
	if r.Src != f.Dst || r.SrcPort != 53 || r.DstPort != 1234 {
		t.Errorf("reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Error("double reverse != identity")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x42, 0xAC, 0x11, 0x00, 0x02}
	if m.String() != "02:42:ac:11:00:02" {
		t.Errorf("MAC string = %s", m)
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeUDP.String() != "UDP" || LayerTypeNone.String() != "None" {
		t.Error("layer type names wrong")
	}
}

func randomAddrPort(r *rand.Rand, v6 bool) netip.AddrPort {
	var a netip.Addr
	if v6 {
		var b [16]byte
		b[0], b[1] = 0x20, 0x01
		for i := 2; i < 16; i++ {
			b[i] = byte(r.Intn(256))
		}
		a = netip.AddrFrom16(b)
	} else {
		a = netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))})
	}
	return netip.AddrPortFrom(a, uint16(1+r.Intn(65535)))
}

func TestPropertyUDPRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	p := NewParser()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v6 := r.Intn(2) == 0
		src, dst := randomAddrPort(r, v6), randomAddrPort(r, v6)
		payload := make([]byte, r.Intn(1200))
		r.Read(payload)
		frame, err := BuildUDP(src, dst, payload)
		if err != nil {
			return false
		}
		flow, err := p.Decode(frame)
		if err != nil {
			return false
		}
		return flow.Src == src.Addr() && flow.Dst == dst.Addr() &&
			flow.SrcPort == src.Port() && flow.DstPort == dst.Port() &&
			bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyTCPChecksumAlwaysVerifies(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v6 := r.Intn(2) == 0
		src, dst := randomAddrPort(r, v6), randomAddrPort(r, v6)
		payload := make([]byte, r.Intn(600))
		r.Read(payload)
		frame, err := BuildTCP(src, dst, TCPMeta{Seq: r.Uint32(), Ack: r.Uint32(), Flags: TCPFlagACK}, payload)
		if err != nil {
			return false
		}
		var eth Ethernet
		rest, err := eth.DecodeFromBytes(frame)
		if err != nil {
			return false
		}
		if v6 {
			var ip IPv6
			seg, err := ip.DecodeFromBytes(rest)
			return err == nil && VerifyTCPChecksum(ip.Src, ip.Dst, seg)
		}
		var ip IPv4
		seg, err := ip.DecodeFromBytes(rest)
		return err == nil && VerifyTCPChecksum(ip.Src, ip.Dst, seg)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecodeNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	p := NewParser()
	f := func(data []byte) bool {
		_, _ = p.Decode(data)
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkParserDecodeUDP(b *testing.B) {
	frame, err := BuildUDP(v4a, v4b, make([]byte, 64))
	if err != nil {
		b.Fatal(err)
	}
	p := NewParser()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildUDPFrame(b *testing.B) {
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildUDP(v4a, v4b, payload); err != nil {
			b.Fatal(err)
		}
	}
}
