package core

import (
	"strings"
	"testing"

	"dnscentral/internal/cloudmodel"
)

func TestShapeVerdictsAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full 9-cell run")
	}
	all, err := RunAll(RunConfig{TotalQueries: 30_000, ResolverScale: 0.004, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	points, err := Figure3(cloudmodel.VantageNL, 3000, 0.003, 56)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := ShapeVerdicts(all, points)
	if len(verdicts) < 14 {
		t.Fatalf("only %d verdicts", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.OK {
			t.Errorf("FAILED: %s — %s", v.Claim, v.Detail)
		}
	}
	out := RenderVerdicts(verdicts)
	if !strings.Contains(out, "shape checks passed") {
		t.Error("rendered verdicts missing summary")
	}
}

func TestShapeVerdictsWithoutFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("full 9-cell run")
	}
	all, err := RunAll(RunConfig{TotalQueries: 20_000, ResolverScale: 0.004, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := ShapeVerdicts(all, nil)
	for _, v := range verdicts {
		if strings.Contains(v.Claim, "Figure 3") {
			t.Error("Figure 3 verdict present without points")
		}
	}
}
