package core

import (
	"fmt"
	"strings"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/stats"
)

// Verdict is one mechanically checked claim of the paper.
type Verdict struct {
	Claim  string
	OK     bool
	Detail string
}

// ShapeVerdicts evaluates the paper's headline claims against a full run.
// nlFig3 may be nil (the Figure 3 verdicts are skipped then).
func ShapeVerdicts(all map[cloudmodel.Vantage]map[cloudmodel.Week]*VWResult, nlFig3 []Figure3Point) []Verdict {
	var out []Verdict
	add := func(claim string, ok bool, format string, args ...any) {
		out = append(out, Verdict{Claim: claim, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	nl20 := all[cloudmodel.VantageNL][cloudmodel.W2020]
	nz20 := all[cloudmodel.VantageNZ][cloudmodel.W2020]
	b18 := all[cloudmodel.VantageBRoot][cloudmodel.W2018]
	b19 := all[cloudmodel.VantageBRoot][cloudmodel.W2019]
	b20 := all[cloudmodel.VantageBRoot][cloudmodel.W2020]

	// §4.1 / Figure 1.
	nlShare, nzShare, bShare := nl20.Agg.CloudShare(), nz20.Agg.CloudShare(), b20.Agg.CloudShare()
	add("5 CPs send >30% of .nl queries but <10% at B-Root",
		nlShare > 0.30 && bShare < 0.10,
		".nl %.1f%%, .nz %.1f%%, B-Root %.1f%%", 100*nlShare, 100*nzShare, 100*bShare)
	add("B-Root cloud share grows 2018→2020 (slower penetration)",
		b18.Agg.CloudShare() < b19.Agg.CloudShare() && b19.Agg.CloudShare() < b20.Agg.CloudShare(),
		"%.1f%% → %.1f%% → %.1f%%", 100*b18.Agg.CloudShare(), 100*b19.Agg.CloudShare(), 100*b20.Agg.CloudShare())

	googleNL := stats.Ratio(nl20.Agg.Provider(astrie.ProviderGoogle).Queries, nl20.Agg.Total)
	googleNZ := stats.Ratio(nz20.Agg.Provider(astrie.ProviderGoogle).Queries, nz20.Agg.Total)
	add("Google sends a larger share to .nl than to .nz",
		googleNL > googleNZ, ".nl %.1f%% vs .nz %.1f%%", 100*googleNL, 100*googleNZ)

	// §4.2.1 / Figure 2: exactly three providers look minimized by 2020
	// at both ccTLDs.
	minimized := func(res *VWResult, p astrie.Provider) bool {
		pa := res.Agg.Provider(p)
		return stats.Ratio(pa.ByType[dnswire.TypeNS], pa.Queries) > 0.5
	}
	count := 0
	names := []string{}
	for _, p := range astrie.CloudProviders {
		if minimized(nl20, p) && minimized(nz20, p) {
			count++
			names = append(names, p.String())
		}
	}
	add("NS queries dominate for 3 of 5 CPs at both ccTLDs in 2020",
		count == 3, "minimized: %s", strings.Join(names, ", "))

	nl18 := all[cloudmodel.VantageNL][cloudmodel.W2018]
	g18 := nl18.Agg.Provider(astrie.ProviderGoogle)
	add("Google was not minimizing in 2018",
		stats.Ratio(g18.ByType[dnswire.TypeNS], g18.Queries) < 0.2,
		"2018 NS share %.1f%%", 100*stats.Ratio(g18.ByType[dnswire.TypeNS], g18.Queries))

	if nlFig3 != nil {
		m, ok := QminAdoptionMonth(nlFig3, 0.5)
		add("Google's Q-min deployment dated to Dec 2019 (Figure 3)",
			ok && m.Year == 2019 && m.Month == time.December,
			"detected %s", m)
	}

	// §4.2.2: one provider does not validate.
	nonValidating := 0
	for _, p := range astrie.CloudProviders {
		pa := nl20.Agg.Provider(p)
		if pa.ByType[dnswire.TypeDS] == 0 && pa.ByType[dnswire.TypeDNSKEY] == 0 {
			nonValidating++
		}
	}
	msDS := nl20.Agg.Provider(astrie.ProviderMicrosoft).ByType[dnswire.TypeDS]
	add("all CPs validate except one (Microsoft sends no DS/DNSKEY)",
		nonValidating == 1 && msDS == 0, "%d non-validating provider(s)", nonValidating)

	cf := nl20.Agg.Provider(astrie.ProviderCloudflare)
	add("Cloudflare queries DS more than DNSKEY",
		cf.ByType[dnswire.TypeDS] > cf.ByType[dnswire.TypeDNSKEY],
		"DS %d vs DNSKEY %d", cf.ByType[dnswire.TypeDS], cf.ByType[dnswire.TypeDNSKEY])

	// §4.2.3 / Figure 4: clouds send proportionally less junk at B-Root.
	otherJunk := stats.Ratio(b20.Agg.Provider(astrie.ProviderOther).Junk, b20.Agg.Provider(astrie.ProviderOther).Queries)
	cloudsBelow := true
	for _, p := range astrie.CloudProviders {
		pa := b20.Agg.Provider(p)
		if stats.Ratio(pa.Junk, pa.Queries) >= otherJunk {
			cloudsBelow = false
		}
	}
	add("B-Root sees ~80% junk overall but proportionally less from CPs",
		1-stats.Ratio(b20.Agg.Valid, b20.Agg.Total) > 0.7 && cloudsBelow,
		"overall junk %.1f%%, long tail %.1f%%", 100*(1-stats.Ratio(b20.Agg.Valid, b20.Agg.Total)), 100*otherJunk)

	// §4.3 / Table 5.
	ms := nl20.Agg.Provider(astrie.ProviderMicrosoft)
	add("Microsoft is all-IPv4 and all-UDP", ms.V6 == 0 && ms.TCP == 0,
		"v6 %d, tcp %d", ms.V6, ms.TCP)

	fb19 := all[cloudmodel.VantageNL][cloudmodel.W2019].Agg.Provider(astrie.ProviderFacebook)
	fb18 := nl18.Agg.Provider(astrie.ProviderFacebook)
	fb20 := nl20.Agg.Provider(astrie.ProviderFacebook)
	add("Facebook majority-IPv6 since 2019 (not in 2018)",
		stats.Ratio(fb18.V6, fb18.Queries) < 0.5 &&
			stats.Ratio(fb19.V6, fb19.Queries) > 0.5 &&
			stats.Ratio(fb20.V6, fb20.Queries) > 0.5,
		"2018 %.0f%%, 2019 %.0f%%, 2020 %.0f%%",
		100*stats.Ratio(fb18.V6, fb18.Queries),
		100*stats.Ratio(fb19.V6, fb19.Queries),
		100*stats.Ratio(fb20.V6, fb20.Queries))

	fbTCP := stats.Ratio(fb20.TCP, fb20.Queries)
	heaviest := true
	for _, p := range astrie.CloudProviders {
		if p == astrie.ProviderFacebook {
			continue
		}
		pa := nl20.Agg.Provider(p)
		if stats.Ratio(pa.TCP, pa.Queries) >= fbTCP {
			heaviest = false
		}
	}
	add("Facebook is the only heavy TCP user", heaviest && fbTCP > 0.05,
		"Facebook TCP %.1f%%", 100*fbTCP)

	// Table 6.
	amazon := nl20.Agg.Provider(astrie.ProviderAmazon).ResolverCounts(nil)
	add("Amazon's IPv6 resolvers are a tiny fraction (Table 6: 1.8%)",
		amazon.V6 > 0 && float64(amazon.V6)/float64(amazon.Total) < 0.06,
		"%d of %d (%.1f%%)", amazon.V6, amazon.Total, 100*float64(amazon.V6)/float64(amazon.Total))

	// Table 4.
	t4 := Table4(nl20)
	add("Google Public DNS carries ≈86.5% of Google's queries from ≈15.6% of its resolvers",
		t4.QueryShare > 0.80 && t4.QueryShare < 0.92 &&
			t4.ResolverShare > 0.09 && t4.ResolverShare < 0.25,
		"queries %.1f%%, resolvers %.1f%%", 100*t4.QueryShare, 100*t4.ResolverShare)

	// Figure 5: location 1 dominates and shows no TCP RTT.
	if sites, err := Figure5(nl20, 0); err == nil && len(sites) > 0 {
		var top SiteStats
		var total uint64
		for _, s := range sites {
			v := s.V4Queries + s.V6Queries
			total += v
			if v > top.V4Queries+top.V6Queries {
				top = s
			}
		}
		add("Facebook's location 1 dominates and sends no TCP (no RTT estimate)",
			top.SiteIndex == 0 && !top.HasRTT,
			"top site %d with %.0f%% of Facebook volume",
			top.SiteIndex+1, 100*float64(top.V4Queries+top.V6Queries)/float64(total))
	}

	// Figure 6 / §4.4.
	f6 := Figure6(nl20)
	add("≈30% of Facebook's EDNS sizes are 512B; ≈24% of Google's ≤1232B",
		f6.FacebookAt512 > 0.24 && f6.FacebookAt512 < 0.36 &&
			f6.GoogleAt1232 > 0.18 && f6.GoogleAt1232 < 0.30,
		"FB@512 %.1f%%, Google@1232 %.1f%%", 100*f6.FacebookAt512, 100*f6.GoogleAt1232)
	add("Facebook's UDP truncation (paper 17.16%) dwarfs Google's (0.04%)",
		f6.Truncation[astrie.ProviderFacebook] > 0.08 &&
			f6.Truncation[astrie.ProviderFacebook] > 20*f6.Truncation[astrie.ProviderGoogle],
		"Facebook %.2f%%, Google %.3f%%",
		100*f6.Truncation[astrie.ProviderFacebook], 100*f6.Truncation[astrie.ProviderGoogle])

	return out
}

// RenderVerdicts renders the verdicts as a markdown checklist.
func RenderVerdicts(vs []Verdict) string {
	var sb strings.Builder
	passed := 0
	for _, v := range vs {
		mark := "✗"
		if v.OK {
			mark = "✓"
			passed++
		}
		fmt.Fprintf(&sb, "- [%s] %s — %s\n", mark, v.Claim, v.Detail)
	}
	fmt.Fprintf(&sb, "\n%d/%d shape checks passed.\n", passed, len(vs))
	return sb.String()
}
