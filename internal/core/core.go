// Package core is the paper's analysis layer: it drives the workload
// generator and the entrada pipeline for each vantage/week and computes
// every table and figure of the evaluation — Figure 1 (cloud query
// ratios), Figure 2/7 (record-type mixes), Figure 3 (Google's monthly
// series and the Q-min adoption point), Figure 4 (junk ratios), Figure 5/8
// (Facebook per-site family split vs RTT), Figure 6 (EDNS size CDFs), and
// Tables 2–6 — together with the paper's published values for comparison.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pipeline"
	"dnscentral/internal/rdns"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/workload"
	"dnscentral/internal/zonedb"
)

// RunConfig scales one experiment run.
type RunConfig struct {
	// TotalQueries per vantage/week trace (default 200_000).
	TotalQueries int
	// ResolverScale scales resolver populations (default 0.01).
	ResolverScale float64
	// Seed for reproducibility.
	Seed int64
	// Workers is the parallelism budget: RunAll runs up to Workers
	// vantage/week cells concurrently, and each cell's analysis streams
	// through a flow-sharded internal/pipeline engine when spare workers
	// remain. 0 or 1 preserves the sequential behavior; results are
	// identical either way (per-cell seeds are fixed up front and the
	// pipeline's merge is order-insensitive).
	Workers int
	// Telemetry, when set, threads a live metrics registry into the
	// workload generators and pipeline engines of every cell. Results
	// are unaffected.
	Telemetry *telemetry.Registry
}

func (c RunConfig) withDefaults() RunConfig {
	if c.TotalQueries <= 0 {
		c.TotalQueries = 200_000
	}
	if c.ResolverScale <= 0 {
		c.ResolverScale = 0.01
	}
	return c
}

// VWResult is the analyzed state of one vantage/week.
type VWResult struct {
	Vantage cloudmodel.Vantage
	Week    cloudmodel.Week
	Agg     *entrada.Aggregates
	Reg     *astrie.Registry
	PTR     *rdns.DB
	Zone    *zonedb.Zone
	Truth   *workload.GroundTruth
	Model   *cloudmodel.VantageWeek
	// NumServers the trace was generated with.
	NumServers int
}

// analyzerSink feeds generated packets straight into an analyzer,
// bypassing pcap bytes (the cmd pipeline exercises the pcap path).
type analyzerSink struct{ an *entrada.Analyzer }

func (s analyzerSink) WritePacket(ts time.Time, data []byte) error {
	s.an.HandlePacket(ts, data)
	return nil
}

// Run generates and analyzes one vantage/week. With cfg.Workers > 1 the
// generated packets stream through a flow-sharded pipeline engine instead
// of a single inline analyzer; the merged result is identical.
func Run(v cloudmodel.Vantage, w cloudmodel.Week, cfg RunConfig) (*VWResult, error) {
	cfg = cfg.withDefaults()
	gen, err := workload.NewGenerator(workload.Config{
		Vantage:       v,
		Week:          w,
		TotalQueries:  cfg.TotalQueries,
		ResolverScale: cfg.ResolverScale,
		Seed:          cfg.Seed,
		// Generation shards under the same budget as analysis; the trace
		// bytes are identical for any worker count.
		Workers:   cfg.Workers,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	anOpts := []entrada.Option{entrada.WithZoneOrigin(gen.Zone().Origin)}

	var agg *entrada.Aggregates
	var truth *workload.GroundTruth
	if cfg.Workers > 1 {
		eng, err := pipeline.NewEngine(context.Background(), pipeline.Options{
			Workers:      cfg.Workers,
			Registry:     gen.Registry(),
			AnalyzerOpts: anOpts,
			Telemetry:    cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		if truth, err = gen.Run(eng); err != nil {
			eng.Close()
			return nil, err
		}
		if agg, err = eng.Close(); err != nil {
			return nil, err
		}
	} else {
		an := entrada.NewAnalyzer(gen.Registry(), anOpts...)
		if truth, err = gen.Run(analyzerSink{an}); err != nil {
			return nil, err
		}
		agg = an.Finish()
	}

	model, err := cloudmodel.Get(v, w)
	if err != nil {
		return nil, err
	}
	numServers := 1
	if v == cloudmodel.VantageNL {
		numServers = 2
	}
	return &VWResult{
		Vantage:    v,
		Week:       w,
		Agg:        agg,
		Reg:        gen.Registry(),
		PTR:        gen.PTRDB(),
		Zone:       gen.Zone(),
		Truth:      truth,
		Model:      model,
		NumServers: numServers,
	}, nil
}

// RunAll runs every vantage/week with per-cell seeds derived from
// cfg.Seed. B-Root traces use the same query budget (its day-long capture
// had comparable volume to a ccTLD week). With cfg.Workers > 1 the cells
// run concurrently under that worker budget; per-cell seeds are assigned
// in the fixed vantage/week order first, so the results are identical to
// a sequential run.
func RunAll(cfg RunConfig) (map[cloudmodel.Vantage]map[cloudmodel.Week]*VWResult, error) {
	type cell struct {
		v    cloudmodel.Vantage
		w    cloudmodel.Week
		seed int64
	}
	var cells []cell
	seed := cfg.Seed
	for _, v := range cloudmodel.Vantages {
		for _, w := range cloudmodel.Weeks {
			seed++
			cells = append(cells, cell{v, w, seed})
		}
	}

	results := make([]*VWResult, len(cells))
	errs := make([]error, len(cells))
	runCell := func(i int, workers int) {
		c := cfg
		c.Seed = cells[i].seed
		c.Workers = workers
		results[i], errs[i] = Run(cells[i].v, cells[i].w, c)
	}

	if cfg.Workers <= 1 {
		for i := range cells {
			runCell(i, cfg.Workers)
		}
	} else {
		// Spread the budget: up to Workers cells in flight, each cell's
		// engine getting an even share of the remaining parallelism.
		pilots := cfg.Workers
		if len(cells) < pilots {
			pilots = len(cells)
		}
		perCell := cfg.Workers / pilots
		jobs := make(chan int)
		var wg sync.WaitGroup
		for p := 0; p < pilots; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runCell(i, perCell)
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	out := make(map[cloudmodel.Vantage]map[cloudmodel.Week]*VWResult)
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: %s/%s: %w", c.v, c.w, errs[i])
		}
		if out[c.v] == nil {
			out[c.v] = make(map[cloudmodel.Week]*VWResult)
		}
		out[c.v][c.w] = results[i]
	}
	return out, nil
}
