// Package core is the paper's analysis layer: it drives the workload
// generator and the entrada pipeline for each vantage/week and computes
// every table and figure of the evaluation — Figure 1 (cloud query
// ratios), Figure 2/7 (record-type mixes), Figure 3 (Google's monthly
// series and the Q-min adoption point), Figure 4 (junk ratios), Figure 5/8
// (Facebook per-site family split vs RTT), Figure 6 (EDNS size CDFs), and
// Tables 2–6 — together with the paper's published values for comparison.
package core

import (
	"fmt"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/entrada"
	"dnscentral/internal/rdns"
	"dnscentral/internal/workload"
	"dnscentral/internal/zonedb"
)

// RunConfig scales one experiment run.
type RunConfig struct {
	// TotalQueries per vantage/week trace (default 200_000).
	TotalQueries int
	// ResolverScale scales resolver populations (default 0.01).
	ResolverScale float64
	// Seed for reproducibility.
	Seed int64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.TotalQueries <= 0 {
		c.TotalQueries = 200_000
	}
	if c.ResolverScale <= 0 {
		c.ResolverScale = 0.01
	}
	return c
}

// VWResult is the analyzed state of one vantage/week.
type VWResult struct {
	Vantage cloudmodel.Vantage
	Week    cloudmodel.Week
	Agg     *entrada.Aggregates
	Reg     *astrie.Registry
	PTR     *rdns.DB
	Zone    *zonedb.Zone
	Truth   *workload.GroundTruth
	Model   *cloudmodel.VantageWeek
	// NumServers the trace was generated with.
	NumServers int
}

// analyzerSink feeds generated packets straight into an analyzer,
// bypassing pcap bytes (the cmd pipeline exercises the pcap path).
type analyzerSink struct{ an *entrada.Analyzer }

func (s analyzerSink) WritePacket(ts time.Time, data []byte) error {
	s.an.HandlePacket(ts, data)
	return nil
}

// Run generates and analyzes one vantage/week.
func Run(v cloudmodel.Vantage, w cloudmodel.Week, cfg RunConfig) (*VWResult, error) {
	cfg = cfg.withDefaults()
	gen, err := workload.NewGenerator(workload.Config{
		Vantage:       v,
		Week:          w,
		TotalQueries:  cfg.TotalQueries,
		ResolverScale: cfg.ResolverScale,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	an := entrada.NewAnalyzer(gen.Registry(),
		entrada.WithZoneOrigin(gen.Zone().Origin))
	truth, err := gen.Run(analyzerSink{an})
	if err != nil {
		return nil, err
	}
	model, err := cloudmodel.Get(v, w)
	if err != nil {
		return nil, err
	}
	numServers := 1
	if v == cloudmodel.VantageNL {
		numServers = 2
	}
	return &VWResult{
		Vantage:    v,
		Week:       w,
		Agg:        an.Finish(),
		Reg:        gen.Registry(),
		PTR:        gen.PTRDB(),
		Zone:       gen.Zone(),
		Truth:      truth,
		Model:      model,
		NumServers: numServers,
	}, nil
}

// RunAll runs every vantage/week with per-cell seeds derived from
// cfg.Seed. B-Root traces use the same query budget (its day-long capture
// had comparable volume to a ccTLD week).
func RunAll(cfg RunConfig) (map[cloudmodel.Vantage]map[cloudmodel.Week]*VWResult, error) {
	out := make(map[cloudmodel.Vantage]map[cloudmodel.Week]*VWResult)
	seed := cfg.Seed
	for _, v := range cloudmodel.Vantages {
		out[v] = make(map[cloudmodel.Week]*VWResult)
		for _, w := range cloudmodel.Weeks {
			seed++
			c := cfg
			c.Seed = seed
			res, err := Run(v, w, c)
			if err != nil {
				return nil, fmt.Errorf("core: %s/%s: %w", v, w, err)
			}
			out[v][w] = res
		}
	}
	return out, nil
}
