package core

import (
	"encoding/json"
	"testing"

	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/entrada"
)

// TestRunParallelMatchesSequential pins the pipeline-wiring invariant:
// streaming a cell's generated packets through the flow-sharded engine
// (Workers > 1) yields byte-identical aggregates to the inline analyzer.
func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := RunConfig{TotalQueries: 8_000, ResolverScale: 0.003, Seed: 11}

	seq, err := Run(cloudmodel.VantageNL, cloudmodel.W2020, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cloudmodel.VantageNL, cloudmodel.W2020, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sj := reportJSON(t, seq.Agg, seq)
	pj := reportJSON(t, par.Agg, par)
	if string(sj) != string(pj) {
		t.Fatalf("parallel report differs from sequential:\nseq: %.200s\npar: %.200s", sj, pj)
	}
}

// TestRunAllParallelMatchesSequential checks that the concurrent cell
// scheduler assigns the same per-cell seeds as the sequential loop.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every vantage/week twice")
	}
	cfg := RunConfig{TotalQueries: 2_000, ResolverScale: 0.003, Seed: 3}
	seq, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cloudmodel.Vantages {
		for _, w := range cloudmodel.Weeks {
			s, p := seq[v][w], par[v][w]
			if s.Truth.Queries != p.Truth.Queries {
				t.Fatalf("%s/%s: query totals differ: %d vs %d", v, w, s.Truth.Queries, p.Truth.Queries)
			}
			sj := reportJSON(t, s.Agg, s)
			pj := reportJSON(t, p.Agg, p)
			if string(sj) != string(pj) {
				t.Errorf("%s/%s: parallel RunAll report differs from sequential", v, w)
			}
		}
	}
}

func reportJSON(t *testing.T, ag *entrada.Aggregates, res *VWResult) []byte {
	t.Helper()
	b, err := json.Marshal(entrada.BuildReport(ag, res.Reg))
	if err != nil {
		t.Fatal(err)
	}
	return b
}
