package core

import (
	"fmt"
	"sort"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/entrada"
	"dnscentral/internal/rdns"
	"dnscentral/internal/stats"
	"dnscentral/internal/workload"
)

// --- Table 3 ------------------------------------------------------------

// Table3Row is one measured dataset row.
type Table3Row struct {
	Vantage    cloudmodel.Vantage
	Week       cloudmodel.Week
	Queries    uint64
	ValidShare float64
	Resolvers  int
	ASes       int
	// PaperValidShare is Table 3's valid/total for comparison.
	PaperValidShare float64
}

// Table3 computes the measured dataset summary of one run.
func Table3(res *VWResult) Table3Row {
	return Table3Row{
		Vantage:         res.Vantage,
		Week:            res.Week,
		Queries:         res.Agg.Total,
		ValidShare:      stats.Ratio(res.Agg.Valid, res.Agg.Total),
		Resolvers:       len(res.Agg.AllResolvers),
		ASes:            len(res.Agg.ASes),
		PaperValidShare: res.Model.ValidShare,
	}
}

// --- Figure 1 -----------------------------------------------------------

// Figure1Row is one provider's share of all queries at a vantage/week.
type Figure1Row struct {
	Provider   astrie.Provider
	Share      float64
	PaperShare float64 // the calibrated model share (Figure 1 bar height)
}

// Figure1 computes the cloud query ratio per provider, plus the combined
// cloud share.
func Figure1(res *VWResult) (rows []Figure1Row, cloudShare float64) {
	for _, p := range astrie.CloudProviders {
		pa := res.Agg.Provider(p)
		rows = append(rows, Figure1Row{
			Provider:   p,
			Share:      stats.Ratio(pa.Queries, res.Agg.Total),
			PaperShare: res.Model.Providers[p].Share,
		})
	}
	return rows, res.Agg.CloudShare()
}

// --- Figure 2 (and 7) ---------------------------------------------------

// Figure2Types are the record types the figure plots.
var Figure2Types = []dnswire.Type{
	dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNS, dnswire.TypeDS,
	dnswire.TypeDNSKEY, dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeSOA,
}

// Figure2Row is one provider's record-type mix.
type Figure2Row struct {
	Provider astrie.Provider
	Shares   map[dnswire.Type]float64
	Other    float64
}

// Figure2 computes the per-provider record type distribution.
func Figure2(res *VWResult) []Figure2Row {
	var rows []Figure2Row
	for _, p := range astrie.CloudProviders {
		pa := res.Agg.Provider(p)
		row := Figure2Row{Provider: p, Shares: make(map[dnswire.Type]float64)}
		accounted := uint64(0)
		for _, t := range Figure2Types {
			row.Shares[t] = stats.Ratio(pa.ByType[t], pa.Queries)
			accounted += pa.ByType[t]
		}
		row.Other = stats.Ratio(pa.Queries-accounted, pa.Queries)
		rows = append(rows, row)
	}
	return rows
}

// --- Figure 3 -----------------------------------------------------------

// Figure3Point is Google's query mix for one month.
type Figure3Point struct {
	Month        cloudmodel.Month
	NSShare      float64
	AShare       float64 // A + AAAA combined
	DSShare      float64
	QminActive   bool
	Anomaly      bool
	TotalQueries uint64
}

// Figure3 reproduces the monthly longitudinal series: it generates one
// Google-only trace per month with the behavior the timeline dictates
// (Q-min from Dec 2019; the .nz cyclic-dependency anomaly in Feb 2020).
func Figure3(v cloudmodel.Vantage, queriesPerMonth int, scale float64, seed int64) ([]Figure3Point, error) {
	if v == cloudmodel.VantageBRoot {
		return nil, fmt.Errorf("core: Figure 3 covers the ccTLDs only")
	}
	var out []Figure3Point
	for i, m := range cloudmodel.Figure3Months {
		qmin, anomaly := cloudmodel.GoogleMonthlyProfile(v, m)
		week := cloudmodel.W2019
		if m.Year == 2020 {
			week = cloudmodel.W2020
		} else if m.Year == 2018 {
			week = cloudmodel.W2018
		}
		qminShare := 0.0
		if qmin {
			qminShare = 0.86 // the deployed fleet share (w2020 profile)
		}
		gen, err := workload.NewGenerator(workload.Config{
			Vantage:        v,
			Week:           week,
			TotalQueries:   queriesPerMonth,
			ResolverScale:  scale,
			Seed:           seed + int64(i),
			ProviderFilter: []astrie.Provider{astrie.ProviderGoogle},
			QminOverride:   &qminShare,
			Anomaly:        anomaly,
			Start:          time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC),
		})
		if err != nil {
			return nil, err
		}
		an := entrada.NewAnalyzer(gen.Registry())
		if _, err := gen.Run(analyzerSink{an}); err != nil {
			return nil, err
		}
		ag := an.Finish()
		google := ag.Provider(astrie.ProviderGoogle)
		out = append(out, Figure3Point{
			Month:        m,
			NSShare:      stats.Ratio(google.ByType[dnswire.TypeNS], google.Queries),
			AShare:       stats.Ratio(google.ByType[dnswire.TypeA]+google.ByType[dnswire.TypeAAAA], google.Queries),
			DSShare:      stats.Ratio(google.ByType[dnswire.TypeDS], google.Queries),
			QminActive:   qmin,
			Anomaly:      anomaly,
			TotalQueries: google.Queries,
		})
	}
	return out, nil
}

// QminAdoptionMonth finds the first month whose NS share jumps above the
// given threshold — the paper's method for dating Google's deployment.
func QminAdoptionMonth(points []Figure3Point, threshold float64) (cloudmodel.Month, bool) {
	for _, p := range points {
		if p.NSShare >= threshold {
			return p.Month, true
		}
	}
	return cloudmodel.Month{}, false
}

// --- Table 4 (and 7) ----------------------------------------------------

// Table4Result is Google's public-DNS vs rest split.
type Table4Result struct {
	TotalQueries    uint64
	PublicQueries   uint64
	QueryShare      float64
	TotalResolvers  int
	PublicResolvers int
	ResolverShare   float64
}

// Table4 computes the Google split for one run.
func Table4(res *VWResult) Table4Result {
	google := res.Agg.Provider(astrie.ProviderGoogle)
	rc := google.ResolverCounts(res.Reg.IsPublicDNSAddr)
	return Table4Result{
		TotalQueries:    google.Queries,
		PublicQueries:   google.PublicDNSQueries,
		QueryShare:      stats.Ratio(google.PublicDNSQueries, google.Queries),
		TotalResolvers:  rc.Total,
		PublicResolvers: rc.Public,
		ResolverShare:   stats.Ratio(uint64(rc.Public), uint64(rc.Total)),
	}
}

// --- Figure 4 -----------------------------------------------------------

// Figure4Row is one provider's junk ratio.
type Figure4Row struct {
	Provider  astrie.Provider
	JunkShare float64
}

// Figure4 computes junk ratios per provider plus the vantage-wide and
// long-tail ("Other") junk shares.
func Figure4(res *VWResult) (rows []Figure4Row, overall, other float64) {
	for _, p := range astrie.CloudProviders {
		pa := res.Agg.Provider(p)
		rows = append(rows, Figure4Row{Provider: p, JunkShare: stats.Ratio(pa.Junk, pa.Queries)})
	}
	oa := res.Agg.Provider(astrie.ProviderOther)
	return rows,
		1 - stats.Ratio(res.Agg.Valid, res.Agg.Total),
		stats.Ratio(oa.Junk, oa.Queries)
}

// --- Table 5 ------------------------------------------------------------

// Table5Row is one provider's transport split.
type Table5Row struct {
	Provider             astrie.Provider
	IPv4, IPv6, UDP, TCP float64
	Paper                cloudmodel.PaperTable5Cell
}

// Table5 computes the query distribution per provider.
func Table5(res *VWResult) []Table5Row {
	var rows []Table5Row
	for _, p := range astrie.CloudProviders {
		pa := res.Agg.Provider(p)
		v6 := stats.Ratio(pa.V6, pa.Queries)
		tcp := stats.Ratio(pa.TCP, pa.Queries)
		row := Table5Row{Provider: p, IPv4: 1 - v6, IPv6: v6, UDP: 1 - tcp, TCP: tcp}
		if weeks, ok := cloudmodel.PaperTable5[p]; ok {
			if cells, ok := weeks[res.Week]; ok {
				row.Paper = cells[res.Vantage]
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Table 6 ------------------------------------------------------------

// Table6Row is one provider's resolver family split.
type Table6Row struct {
	Provider astrie.Provider
	Counts   entrada.ResolverCounts
	V6Frac   float64
}

// Table6 computes resolver counts by family for Amazon and Microsoft.
func Table6(res *VWResult) []Table6Row {
	var rows []Table6Row
	for _, p := range []astrie.Provider{astrie.ProviderAmazon, astrie.ProviderMicrosoft} {
		rc := res.Agg.Provider(p).ResolverCounts(nil)
		rows = append(rows, Table6Row{
			Provider: p,
			Counts:   rc,
			V6Frac:   stats.Ratio(uint64(rc.V6), uint64(rc.Total)),
		})
	}
	return rows
}

// --- Figure 5 (and 8) ---------------------------------------------------

// SiteStats is one Facebook site's behavior toward one server.
type SiteStats struct {
	Site       string
	SiteIndex  int
	V4Queries  uint64
	V6Queries  uint64
	V6Ratio    float64
	MedianRTT4 time.Duration
	MedianRTT6 time.Duration
	HasRTT     bool
}

// Figure5 reproduces the per-site analysis for the server-th authoritative
// server: it reverse-looks-up every Facebook resolver address through the
// PTR database, extracts the airport-coded site, aggregates the per-family
// query counts, and attaches the median TCP-handshake RTTs.
func Figure5(res *VWResult, server int) ([]SiteStats, error) {
	if server < 0 || server >= res.NumServers {
		return nil, fmt.Errorf("core: server %d out of range [0,%d)", server, res.NumServers)
	}
	sA4 := workload.ServerAddr(res.Vantage, server, false)
	sA6 := workload.ServerAddr(res.Vantage, server, true)

	bySite := make(map[string]*SiteStats)
	rttsBySite := make(map[string]map[bool]*stats.DurationReservoir) // site → v6? → sketch

	for k, fc := range res.Agg.FocusQueries {
		if k.Server != sA4 && k.Server != sA6 {
			continue
		}
		target, ok := res.PTR.Lookup(k.Client)
		if !ok {
			continue
		}
		site, _, _, ok := rdns.ParseFacebookPTR(target)
		if !ok {
			continue
		}
		st, ok := bySite[site]
		if !ok {
			st = &SiteStats{Site: site, SiteIndex: siteIndex(site)}
			bySite[site] = st
		}
		st.V4Queries += fc.V4
		st.V6Queries += fc.V6
	}
	for k, samples := range res.Agg.RTTs {
		if k.Server != sA4 && k.Server != sA6 {
			continue
		}
		target, ok := res.PTR.Lookup(k.Client)
		if !ok {
			continue
		}
		site, _, _, ok := rdns.ParseFacebookPTR(target)
		if !ok {
			continue
		}
		m := rttsBySite[site]
		if m == nil {
			m = make(map[bool]*stats.DurationReservoir)
			rttsBySite[site] = m
		}
		v6 := k.Client.Is6() && !k.Client.Is4In6()
		if m[v6] == nil {
			m[v6] = &stats.DurationReservoir{}
		}
		m[v6].Merge(samples)
	}

	var out []SiteStats
	for site, st := range bySite {
		total := st.V4Queries + st.V6Queries
		st.V6Ratio = stats.Ratio(st.V6Queries, total)
		if m, ok := rttsBySite[site]; ok {
			st.MedianRTT4 = m[false].Median()
			st.MedianRTT6 = m[true].Median()
			st.HasRTT = m[false].Count()+m[true].Count() > 0
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SiteIndex < out[j].SiteIndex })
	return out, nil
}

// siteIndex maps an airport code to its model index (locations are
// numbered 1..13 in the figure; we return 0-based).
func siteIndex(site string) int {
	for i, code := range rdns.FacebookSites {
		if code == site {
			return i
		}
	}
	return len(rdns.FacebookSites)
}

// DualStackCount runs the paper's dual-stack identification over all
// Facebook resolvers seen in the trace.
func DualStackCount(res *VWResult) (dual int, noPTR int) {
	m := rdns.NewMatcher()
	for k := range res.Agg.FocusQueries {
		target, _ := res.PTR.Lookup(k.Client)
		m.Observe(k.Client, target)
	}
	n, _ := m.Unmatched()
	return len(m.DualStacks()), n
}

// --- Figure 6 -----------------------------------------------------------

// Figure6Result carries the EDNS CDFs and truncation ratios.
type Figure6Result struct {
	FacebookCDF []stats.CDFPoint
	GoogleCDF   []stats.CDFPoint
	// At512 / At1232 evaluate the CDFs at the paper's anchor points.
	FacebookAt512 float64
	GoogleAt1232  float64
	// Truncation ratios per provider (§4.4).
	Truncation map[astrie.Provider]float64
}

// Figure6 computes the EDNS(0) size CDFs and UDP truncation ratios.
func Figure6(res *VWResult) Figure6Result {
	fb := res.Agg.Provider(astrie.ProviderFacebook)
	google := res.Agg.Provider(astrie.ProviderGoogle)
	out := Figure6Result{
		FacebookCDF: fb.EDNSSizes.CDF(),
		GoogleCDF:   google.EDNSSizes.CDF(),
		Truncation:  make(map[astrie.Provider]float64),
	}
	out.FacebookAt512 = stats.CDFAt(out.FacebookCDF, 512)
	out.GoogleAt1232 = stats.CDFAt(out.GoogleCDF, 1232)
	for _, p := range astrie.CloudProviders {
		pa := res.Agg.Provider(p)
		out.Truncation[p] = stats.Ratio(pa.TruncatedUDP, pa.UDPResponses)
	}
	return out
}
