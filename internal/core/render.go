package core

import (
	"fmt"
	"strings"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/pipeline"
)

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// RenderTable3 renders measured vs paper dataset rows as markdown.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("| Vantage | Week | Queries (scaled) | Valid share (measured) | Valid share (paper) | Resolvers (scaled) | ASes (scaled) |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %s | %d | %s | %s | %d | %d |\n",
			r.Vantage, r.Week, r.Queries, pct(r.ValidShare), pct(r.PaperValidShare), r.Resolvers, r.ASes)
	}
	return sb.String()
}

// RenderFigure1 renders the cloud-share comparison.
func RenderFigure1(v cloudmodel.Vantage, w cloudmodel.Week, rows []Figure1Row, cloudShare float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1 — %s %s: cloud share measured %s (paper ≈%s)\n",
		v, w, pct(cloudShare), pct(cloudmodel.PaperFigure1CloudShare[v][w]))
	sb.WriteString("| Provider | Share (measured) | Share (model) |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %s | %s |\n", r.Provider, pct(r.Share), pct(r.PaperShare))
	}
	return sb.String()
}

// RenderFigure2 renders the record-type mix.
func RenderFigure2(rows []Figure2Row) string {
	var sb strings.Builder
	sb.WriteString("| Provider |")
	for _, t := range Figure2Types {
		fmt.Fprintf(&sb, " %s |", t)
	}
	sb.WriteString(" other |\n|---|")
	for range Figure2Types {
		sb.WriteString("---|")
	}
	sb.WriteString("---|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s |", r.Provider)
		for _, t := range Figure2Types {
			fmt.Fprintf(&sb, " %s |", pct(r.Shares[t]))
		}
		fmt.Fprintf(&sb, " %s |\n", pct(r.Other))
	}
	return sb.String()
}

// RenderFigure3 renders the monthly Google series.
func RenderFigure3(v cloudmodel.Vantage, points []Figure3Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — Google monthly query mix at .%s\n", v)
	sb.WriteString("| Month | NS | A+AAAA | DS | Q-min | Anomaly |\n|---|---|---|---|---|---|\n")
	for _, p := range points {
		mark := ""
		if p.QminActive {
			mark = "on"
		}
		anom := ""
		if p.Anomaly {
			anom = "cyclic-dep"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			p.Month, pct(p.NSShare), pct(p.AShare), pct(p.DSShare), mark, anom)
	}
	if m, ok := QminAdoptionMonth(points, 0.5); ok {
		fmt.Fprintf(&sb, "\nDetected Q-min adoption: %s (paper: Dec 2019, confirmed by Google).\n", m)
	}
	return sb.String()
}

// RenderTable4 renders the Google public-DNS split against the paper row.
func RenderTable4(res Table4Result, paper cloudmodel.PaperGoogleSplit) string {
	var sb strings.Builder
	sb.WriteString("| | Measured | Paper |\n|---|---|---|\n")
	fmt.Fprintf(&sb, "| Public query share | %s | %s |\n",
		pct(res.QueryShare), pct(paper.PublicQueries/paper.TotalQueries))
	fmt.Fprintf(&sb, "| Public resolver share | %s | %s |\n",
		pct(res.ResolverShare), pct(float64(paper.PublicResolv)/float64(paper.TotalResolvers)))
	return sb.String()
}

// RenderFigure4 renders junk ratios.
func RenderFigure4(rows []Figure4Row, overall, other float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Overall junk: %s, long-tail junk: %s\n", pct(overall), pct(other))
	sb.WriteString("| Provider | Junk share |\n|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %s |\n", r.Provider, pct(r.JunkShare))
	}
	return sb.String()
}

// RenderTable5 renders the transport distribution against Table 5.
func RenderTable5(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("| Provider | IPv4 | IPv6 | UDP | TCP | paper IPv4 | paper IPv6 | paper UDP | paper TCP |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
			r.Provider, r.IPv4, r.IPv6, r.UDP, r.TCP,
			r.Paper.IPv4, r.Paper.IPv6, r.Paper.UDP, r.Paper.TCP)
	}
	return sb.String()
}

// RenderTable6 renders resolver family counts against Table 6.
func RenderTable6(v cloudmodel.Vantage, rows []Table6Row) string {
	var sb strings.Builder
	sb.WriteString("| Provider | Resolvers | IPv4 | IPv6 | IPv6 frac (measured) | IPv6 frac (paper) |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range rows {
		paper := ""
		for _, pr := range cloudmodel.PaperTable6 {
			if pr.Provider == r.Provider && pr.Vantage == v {
				paper = pct(float64(pr.V6) / float64(pr.Total))
			}
		}
		fmt.Fprintf(&sb, "| %s | %d | %d | %d | %s | %s |\n",
			r.Provider, r.Counts.Total, r.Counts.V4, r.Counts.V6, pct(r.V6Frac), paper)
	}
	return sb.String()
}

// RenderFigure5 renders the per-site table.
func RenderFigure5(server int, rows []SiteStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — Facebook sites toward server %c\n", 'A'+server)
	sb.WriteString("| Loc | Site | v4 queries | v6 queries | v6 ratio | median RTT v4 | median RTT v6 |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		rtt4, rtt6 := "—", "—"
		if r.HasRTT {
			if r.MedianRTT4 > 0 {
				rtt4 = fmt.Sprintf("%.0fms", float64(r.MedianRTT4)/float64(time.Millisecond))
			}
			if r.MedianRTT6 > 0 {
				rtt6 = fmt.Sprintf("%.0fms", float64(r.MedianRTT6)/float64(time.Millisecond))
			}
		}
		fmt.Fprintf(&sb, "| %d | %s | %d | %d | %s | %s | %s |\n",
			r.SiteIndex+1, r.Site, r.V4Queries, r.V6Queries, pct(r.V6Ratio), rtt4, rtt6)
	}
	return sb.String()
}

// RenderFigure6 renders the EDNS CDN anchors and truncation ratios.
func RenderFigure6(res Figure6Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EDNS(0) CDF anchors: Facebook ≤512B %s (paper ≈%s); Google ≤1232B %s (paper ≈%s)\n",
		pct(res.FacebookAt512), pct(cloudmodel.PaperFigure6.FacebookAt512),
		pct(res.GoogleAt1232), pct(cloudmodel.PaperFigure6.GoogleAt1232))
	sb.WriteString("| Provider | Truncated UDP (measured) | Truncated UDP (paper) |\n|---|---|---|\n")
	for _, p := range astrie.CloudProviders {
		paper := ""
		if v, ok := cloudmodel.PaperTruncation[p]; ok {
			paper = fmt.Sprintf("%.2f%%", 100*v)
		}
		fmt.Fprintf(&sb, "| %s | %.2f%% | %s |\n", p, 100*res.Truncation[p], paper)
	}
	return sb.String()
}

// RenderWindowSeries renders the streaming windows a follow-mode run
// emitted as the paper's centralization time series: per window the
// query rate, the provider-share HHI and the largest provider — the
// continuous-operation counterpart of the Figure 1 snapshot.
func RenderWindowSeries(windows []pipeline.Window) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Window series — %d windows\n", len(windows))
	sb.WriteString("| Window start | Queries | QPS | HHI | Top provider | Top share |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, w := range windows {
		top, topShare := "—", 0.0
		if len(w.Shares) > 0 { // Shares is sorted descending
			top, topShare = w.Shares[0].Name, w.Shares[0].Fraction
		}
		qps := 0.0
		if secs := w.Duration.Seconds(); secs > 0 {
			qps = float64(w.Queries) / secs
		}
		fmt.Fprintf(&sb, "| %s | %d | %.1f | %.3f | %s | %s |\n",
			w.Start.Format("2006-01-02 15:04:05"), w.Queries, qps, w.HHI, top, pct(topShare))
	}
	return sb.String()
}
