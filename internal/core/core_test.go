package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
)

// smallCfg keeps unit-test runs fast; the benches run at full scale.
var smallCfg = RunConfig{TotalQueries: 25_000, ResolverScale: 0.003, Seed: 7}

// cache one run per vantage/week across tests.
var runCache = map[string]*VWResult{}

func run(t *testing.T, v cloudmodel.Vantage, w cloudmodel.Week) *VWResult {
	t.Helper()
	key := string(v) + "/" + string(w)
	if res, ok := runCache[key]; ok {
		return res
	}
	res, err := Run(v, w, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	runCache[key] = res
	return res
}

func TestTable3ValidShares(t *testing.T) {
	for _, v := range cloudmodel.Vantages {
		res := run(t, v, cloudmodel.W2020)
		row := Table3(res)
		if math.Abs(row.ValidShare-row.PaperValidShare) > 0.04 {
			t.Errorf("%s: valid share %.3f vs paper %.3f", v, row.ValidShare, row.PaperValidShare)
		}
		if row.Resolvers == 0 || row.ASes == 0 {
			t.Errorf("%s: empty resolver/AS counts", v)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	nl := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	rows, cloud := Figure1(nl)
	if cloud < 0.28 || cloud > 0.38 {
		t.Errorf(".nl cloud share = %.3f, want ≈1/3", cloud)
	}
	shares := map[astrie.Provider]float64{}
	for _, r := range rows {
		shares[r.Provider] = r.Share
		if math.Abs(r.Share-r.PaperShare) > 0.025 {
			t.Errorf("%s share %.3f vs model %.3f", r.Provider, r.Share, r.PaperShare)
		}
	}
	if shares[astrie.ProviderGoogle] <= shares[astrie.ProviderFacebook] {
		t.Error("Google must dominate Facebook at .nl")
	}
	broot := run(t, cloudmodel.VantageBRoot, cloudmodel.W2020)
	_, bcloud := Figure1(broot)
	if bcloud > 0.12 {
		t.Errorf("B-Root cloud share = %.3f, want ≈0.087", bcloud)
	}
	if bcloud >= cloud {
		t.Error("B-Root concentration must be far below the ccTLDs")
	}
}

func TestFigure2QminSignature(t *testing.T) {
	res2018 := run(t, cloudmodel.VantageNL, cloudmodel.W2018)
	res2020 := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	f18 := rowsByProvider(Figure2(res2018))
	f20 := rowsByProvider(Figure2(res2020))
	// 2018: A dominates for every provider.
	for p, r := range f18 {
		if r.Shares[dnswire.TypeA] < r.Shares[dnswire.TypeNS] {
			t.Errorf("2018 %s: NS (%.2f) above A (%.2f)", p, r.Shares[dnswire.TypeNS], r.Shares[dnswire.TypeA])
		}
	}
	// 2020: NS dominates for the three Q-min adopters, not for Microsoft.
	for _, p := range []astrie.Provider{astrie.ProviderGoogle, astrie.ProviderCloudflare, astrie.ProviderFacebook} {
		if f20[p].Shares[dnswire.TypeNS] < 0.5 {
			t.Errorf("2020 %s: NS share %.2f, want dominant (Q-min)", p, f20[p].Shares[dnswire.TypeNS])
		}
		if f18[p].Shares[dnswire.TypeNS] > 0.2 && p != astrie.ProviderCloudflare {
			t.Errorf("2018 %s: NS share %.2f, want small", p, f18[p].Shares[dnswire.TypeNS])
		}
	}
	if f20[astrie.ProviderMicrosoft].Shares[dnswire.TypeNS] > 0.2 {
		t.Error("2020 Microsoft should not look minimized")
	}
	// Cloudflare's DS share must exceed its DNSKEY share (§4.2.2).
	cf := f20[astrie.ProviderCloudflare]
	if cf.Shares[dnswire.TypeDS] <= cf.Shares[dnswire.TypeDNSKEY] {
		t.Error("Cloudflare DS share must exceed DNSKEY share")
	}
	// Microsoft sends no DS at all (the non-validating provider).
	if f20[astrie.ProviderMicrosoft].Shares[dnswire.TypeDS] > 0.001 {
		t.Error("Microsoft must not send DS queries")
	}
}

func rowsByProvider(rows []Figure2Row) map[astrie.Provider]Figure2Row {
	out := make(map[astrie.Provider]Figure2Row, len(rows))
	for _, r := range rows {
		out[r.Provider] = r
	}
	return out
}

func TestFigure3DetectsQminAdoption(t *testing.T) {
	points, err := Figure3(cloudmodel.VantageNL, 3000, 0.002, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 18 {
		t.Fatalf("%d monthly points", len(points))
	}
	m, ok := QminAdoptionMonth(points, 0.5)
	if !ok {
		t.Fatal("no adoption month detected")
	}
	if m.Year != 2019 || m.Month != time.December {
		t.Errorf("adoption detected at %s, want 2019-12", m)
	}
	// Before adoption NS is low, after it is high.
	for _, p := range points {
		if !p.QminActive && p.NSShare > 0.2 {
			t.Errorf("%s: NS share %.2f before adoption", p.Month, p.NSShare)
		}
		if p.QminActive && !p.Anomaly && p.NSShare < 0.5 {
			t.Errorf("%s: NS share %.2f after adoption", p.Month, p.NSShare)
		}
	}
}

func TestFigure3NZAnomaly(t *testing.T) {
	points, err := Figure3(cloudmodel.VantageNZ, 3000, 0.002, 77)
	if err != nil {
		t.Fatal(err)
	}
	var feb, mar Figure3Point
	for _, p := range points {
		if p.Month.Year == 2020 && p.Month.Month == time.February {
			feb = p
		}
		if p.Month.Year == 2020 && p.Month.Month == time.March {
			mar = p
		}
	}
	if !feb.Anomaly {
		t.Fatal("Feb 2020 anomaly missing")
	}
	if feb.AShare <= mar.AShare {
		t.Errorf("Feb A-share %.2f must exceed Mar %.2f (cyclic dependency)", feb.AShare, mar.AShare)
	}
	if feb.NSShare >= mar.NSShare {
		t.Errorf("Feb NS-share %.2f must dip below Mar %.2f", feb.NSShare, mar.NSShare)
	}
	if _, err := Figure3(cloudmodel.VantageBRoot, 100, 0.002, 1); err == nil {
		t.Error("Figure 3 must reject B-Root")
	}
}

func TestTable4GoogleSplit(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	t4 := Table4(res)
	if math.Abs(t4.QueryShare-0.865) > 0.05 {
		t.Errorf("public query share %.3f, paper 0.865", t4.QueryShare)
	}
	if math.Abs(t4.ResolverShare-0.156) > 0.08 {
		t.Errorf("public resolver share %.3f, paper 0.156", t4.ResolverShare)
	}
}

func TestFigure4Shape(t *testing.T) {
	res := run(t, cloudmodel.VantageBRoot, cloudmodel.W2020)
	rows, overall, other := Figure4(res)
	if overall < 0.7 {
		t.Errorf("B-Root overall junk %.3f, want ≈0.8", overall)
	}
	for _, r := range rows {
		if r.JunkShare >= other {
			t.Errorf("B-Root %s junk %.3f not below long-tail %.3f", r.Provider, r.JunkShare, other)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	rows := Table5(res)
	byP := map[astrie.Provider]Table5Row{}
	for _, r := range rows {
		byP[r.Provider] = r
	}
	if byP[astrie.ProviderMicrosoft].IPv6 != 0 || byP[astrie.ProviderMicrosoft].TCP != 0 {
		t.Error("Microsoft not all-IPv4/all-UDP")
	}
	if byP[astrie.ProviderFacebook].IPv6 < 0.6 {
		t.Errorf("Facebook IPv6 %.2f, want > 0.6", byP[astrie.ProviderFacebook].IPv6)
	}
	if byP[astrie.ProviderFacebook].TCP < 0.06 {
		t.Errorf("Facebook TCP %.2f, want ≈0.14", byP[astrie.ProviderFacebook].TCP)
	}
	if byP[astrie.ProviderAmazon].IPv6 > 0.10 {
		t.Errorf("Amazon IPv6 %.2f, want ≈0.03", byP[astrie.ProviderAmazon].IPv6)
	}
	// Paper cells attached for ccTLDs.
	if byP[astrie.ProviderGoogle].Paper.IPv4 == 0 {
		t.Error("paper comparison cell missing")
	}
}

func TestTable6Shape(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	rows := Table6(res)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Counts.Total < 30 {
			t.Fatalf("%s: only %d resolvers at this scale", r.Provider, r.Counts.Total)
		}
		if r.V6Frac > 0.08 {
			t.Errorf("%s IPv6 resolver fraction %.3f, want ≲0.05 (Table 6)", r.Provider, r.V6Frac)
		}
		if r.Counts.V4+r.Counts.V6 != r.Counts.Total {
			t.Errorf("%s: family split does not add up", r.Provider)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	sites, err := Figure5(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) < 10 {
		t.Fatalf("sites = %d, want ≈13", len(sites))
	}
	// Location 1 dominates query volume.
	var maxSite SiteStats
	var total uint64
	for _, s := range sites {
		vol := s.V4Queries + s.V6Queries
		total += vol
		if vol > maxSite.V4Queries+maxSite.V6Queries {
			maxSite = s
		}
	}
	if maxSite.SiteIndex != 0 {
		t.Errorf("dominant site = %d, want location 1", maxSite.SiteIndex+1)
	}
	if frac := float64(maxSite.V4Queries+maxSite.V6Queries) / float64(total); frac < 0.3 {
		t.Errorf("location 1 share %.2f, want dominant", frac)
	}
	// Location 1 sends no TCP → no RTT estimate (the paper's observation).
	for _, s := range sites {
		if s.SiteIndex == 0 && s.HasRTT {
			t.Error("location 1 must have no TCP RTT samples")
		}
	}
	// Sites 8-10 prefer IPv4 (large IPv6 RTT); site 1 prefers IPv6.
	for _, s := range sites {
		switch {
		case s.SiteIndex == 0 && s.V6Ratio < 0.5:
			t.Errorf("location 1 v6 ratio %.2f, want high", s.V6Ratio)
		case (s.SiteIndex >= 7 && s.SiteIndex <= 9) && s.V6Ratio > 0.5:
			t.Errorf("location %d v6 ratio %.2f, want low (large v6 RTT)", s.SiteIndex+1, s.V6Ratio)
		}
	}
	// RTT correlation: among sites with RTT, v4-preferring sites have
	// rtt6 > rtt4.
	for _, s := range sites {
		if s.HasRTT && s.MedianRTT4 > 0 && s.MedianRTT6 > 0 && s.SiteIndex >= 7 && s.SiteIndex <= 9 {
			if s.MedianRTT6 <= s.MedianRTT4 {
				t.Errorf("location %d: RTT6 %v ≤ RTT4 %v but prefers v4", s.SiteIndex+1, s.MedianRTT6, s.MedianRTT4)
			}
		}
	}
	if _, err := Figure5(res, 5); err == nil {
		t.Error("out-of-range server accepted")
	}
}

func TestFigure5ServerBDiffers(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	a, err := Figure5(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(res, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8: server B shows different per-site family preferences;
	// at least one site must flip its majority family between A and B.
	av6 := map[string]float64{}
	for _, s := range a {
		av6[s.Site] = s.V6Ratio
	}
	flips := 0
	for _, s := range b {
		if ra, ok := av6[s.Site]; ok {
			if (ra > 0.5) != (s.V6Ratio > 0.5) {
				flips++
			}
		}
	}
	if flips == 0 {
		t.Error("no site flips family preference between servers A and B")
	}
}

func TestDualStackIdentification(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	dual, _ := DualStackCount(res)
	if dual == 0 {
		t.Fatal("no dual-stack resolvers identified via PTR joining")
	}
}

func TestFigure6Anchors(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	f6 := Figure6(res)
	if math.Abs(f6.FacebookAt512-0.30) > 0.06 {
		t.Errorf("Facebook CDF at 512 = %.3f, paper ≈0.30", f6.FacebookAt512)
	}
	if math.Abs(f6.GoogleAt1232-0.24) > 0.06 {
		t.Errorf("Google CDF at 1232 = %.3f, paper ≈0.24", f6.GoogleAt1232)
	}
	if f6.Truncation[astrie.ProviderFacebook] < 0.05 {
		t.Errorf("Facebook truncation %.4f, paper 0.1716", f6.Truncation[astrie.ProviderFacebook])
	}
	if f6.Truncation[astrie.ProviderGoogle] > 0.005 {
		t.Errorf("Google truncation %.4f, paper 0.0004", f6.Truncation[astrie.ProviderGoogle])
	}
	if f6.Truncation[astrie.ProviderMicrosoft] > 0.005 {
		t.Errorf("Microsoft truncation %.4f, paper 0.0001", f6.Truncation[astrie.ProviderMicrosoft])
	}
}

func TestRenderersProduceMarkdown(t *testing.T) {
	res := run(t, cloudmodel.VantageNL, cloudmodel.W2020)
	rows, cloud := Figure1(res)
	outputs := []string{
		RenderTable3([]Table3Row{Table3(res)}),
		RenderFigure1(res.Vantage, res.Week, rows, cloud),
		RenderFigure2(Figure2(res)),
		RenderTable4(Table4(res), cloudmodel.PaperTable4[0]),
		RenderTable5(Table5(res)),
		RenderTable6(res.Vantage, Table6(res)),
		RenderFigure6(Figure6(res)),
	}
	f4rows, overall, other := Figure4(res)
	outputs = append(outputs, RenderFigure4(f4rows, overall, other))
	sites, _ := Figure5(res, 0)
	outputs = append(outputs, RenderFigure5(0, sites))
	for i, out := range outputs {
		if !strings.Contains(out, "|") || len(out) < 50 {
			t.Errorf("renderer %d output too small:\n%s", i, out)
		}
	}
}

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}.withDefaults()
	if c.TotalQueries == 0 || c.ResolverScale == 0 {
		t.Error("defaults not applied")
	}
}
