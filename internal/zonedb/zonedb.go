// Package zonedb models the DNS zones the paper's vantage points serve:
// the root zone (TLD delegations), .nl (≈5.9M second-level delegations) and
// .nz (≈140K second-level plus ≈570K third-level delegations under closed
// categories such as co.nz and net.nz).
//
// Zones are *virtual*: registered domains are a deterministic family
// d<rank>.<suffix> whose existence, NS set and DNSSEC status are computed
// on demand from the rank, so a 5.9M-delegation zone costs no memory. This
// preserves the properties the analysis depends on — existence vs
// NXDOMAIN, per-domain DS records, referral NS sets — while scaling to the
// paper's zone sizes (Table 2).
package zonedb

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"dnscentral/internal/dnswire"
)

// NZCategories are the closed second-level categories of .nz under which
// third-level registrations live (example.net.nz, example.co.nz, ...).
var NZCategories = []string{"co", "net", "org", "ac", "geek", "govt", "school", "maori"}

// Zone is one authoritative zone. Build with NewCcTLD or NewRoot.
type Zone struct {
	// Origin is the zone apex, canonical form ("nl.", "nz.", ".").
	Origin string
	// ServerNames are the zone's own authoritative server host names
	// (the NS set of the apex).
	ServerNames []string

	numSecond int
	numThird  int
	categories []string

	signedFraction float64
	soa            dnswire.SOAData
	dnskey         dnswire.DNSKEYData

	// root-only: delegated TLD labels.
	tlds map[string]bool
	tldList []string

	// leaf marks a second-level (registrant) zone that answers with
	// terminal records instead of referrals.
	leaf bool
}

// LeafHosts are the host labels a leaf zone answers for (besides the apex).
var LeafHosts = []string{"www", "mail", "ns1", "ns2"}

// NewLeaf builds the zone of one registered domain: the authoritative
// endpoint a resolver reaches after following the TLD's referral. It
// answers A/AAAA for the apex and the LeafHosts labels and NXDOMAIN for
// anything else.
func NewLeaf(origin string, serverNames []string) (*Zone, error) {
	origin = dnswire.CanonicalName(origin)
	if origin == "." || dnswire.CountLabels(origin) < 2 {
		return nil, fmt.Errorf("zonedb: leaf origin %q must be a registered domain", origin)
	}
	if len(serverNames) == 0 {
		return nil, fmt.Errorf("zonedb: zone needs at least one server name")
	}
	return &Zone{
		Origin:      origin,
		ServerNames: canonicalAll(serverNames),
		leaf:        true,
		soa: dnswire.SOAData{
			MName: serverNames[0], RName: "hostmaster." + origin,
			Serial: 2020040500, Refresh: 3600, Retry: 600, Expire: 2419200, Minimum: 300,
		},
		dnskey: dnswire.DNSKEYData{
			Flags: 257, Protocol: 3, Algorithm: 13,
			PublicKey: []byte("synthetic-leaf-ksk-" + origin),
		},
	}, nil
}

// IsLeaf reports whether z is a registrant (terminal) zone.
func (z *Zone) IsLeaf() bool { return z.leaf }

// LeafOwns reports whether a leaf zone has records at qname (the apex or
// one of the LeafHosts labels).
func (z *Zone) LeafOwns(qname string) bool {
	qname = dnswire.CanonicalName(qname)
	if qname == z.Origin {
		return true
	}
	labels := dnswire.SplitLabels(qname)
	if len(labels) != dnswire.CountLabels(z.Origin)+1 {
		return false
	}
	for _, h := range LeafHosts {
		if labels[0] == h {
			return true
		}
	}
	return false
}

// NewCcTLD builds a country-code TLD zone with numSecond second-level
// delegations and numThird third-level delegations spread over the closed
// categories (pass numThird=0 for a flat registry like .nl).
// signedFraction of delegations carry DS records.
func NewCcTLD(origin string, numSecond, numThird int, signedFraction float64, serverNames []string) (*Zone, error) {
	origin = dnswire.CanonicalName(origin)
	if origin == "." {
		return nil, fmt.Errorf("zonedb: ccTLD origin must not be the root")
	}
	if numSecond < 0 || numThird < 0 || numSecond+numThird == 0 {
		return nil, fmt.Errorf("zonedb: zone must have at least one delegation")
	}
	if signedFraction < 0 || signedFraction > 1 {
		return nil, fmt.Errorf("zonedb: signedFraction %v out of range", signedFraction)
	}
	if len(serverNames) == 0 {
		return nil, fmt.Errorf("zonedb: zone needs at least one server name")
	}
	z := &Zone{
		Origin:         origin,
		ServerNames:    canonicalAll(serverNames),
		numSecond:      numSecond,
		numThird:       numThird,
		categories:     NZCategories,
		signedFraction: signedFraction,
		soa: dnswire.SOAData{
			MName:   serverNames[0],
			RName:   "hostmaster." + origin,
			Serial:  2020040500,
			Refresh: 3600, Retry: 600, Expire: 2419200, Minimum: 900,
		},
		dnskey: dnswire.DNSKEYData{
			Flags: 257, Protocol: 3, Algorithm: 13,
			PublicKey: []byte("synthetic-ksk-" + origin),
		},
	}
	return z, nil
}

// NewRoot builds the root zone with the given delegated TLD labels (bare
// labels like "com", "nl").
func NewRoot(tlds []string, serverNames []string) (*Zone, error) {
	if len(tlds) == 0 {
		return nil, fmt.Errorf("zonedb: root zone needs TLDs")
	}
	if len(serverNames) == 0 {
		return nil, fmt.Errorf("zonedb: zone needs at least one server name")
	}
	z := &Zone{
		Origin:      ".",
		ServerNames: canonicalAll(serverNames),
		tlds:        make(map[string]bool, len(tlds)),
		signedFraction: 1, // the root and TLD DSes are fully signed
		soa: dnswire.SOAData{
			MName: serverNames[0], RName: "nstld.verisign-grs.com.",
			Serial: 2020050600, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		},
		dnskey: dnswire.DNSKEYData{
			Flags: 257, Protocol: 3, Algorithm: 8,
			PublicKey: []byte("synthetic-root-ksk"),
		},
	}
	for _, t := range tlds {
		label := strings.TrimSuffix(dnswire.CanonicalName(t), ".")
		if label == "" || strings.Contains(label, ".") {
			return nil, fmt.Errorf("zonedb: %q is not a bare TLD label", t)
		}
		if !z.tlds[label] {
			z.tlds[label] = true
			z.tldList = append(z.tldList, label)
		}
	}
	return z, nil
}

func canonicalAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = dnswire.CanonicalName(n)
	}
	return out
}

// IsRoot reports whether z is the root zone.
func (z *Zone) IsRoot() bool { return z.Origin == "." }

// Size returns the number of delegations (registered domains, or TLDs for
// the root).
func (z *Zone) Size() int {
	if z.IsRoot() {
		return len(z.tldList)
	}
	return z.numSecond + z.numThird
}

// NumSecondLevel and NumThirdLevel return the registration split
// (Table 2 reports .nz had 140-141K second-level and 569-580K third-level
// domains).
func (z *Zone) NumSecondLevel() int { return z.numSecond }

// NumThirdLevel returns the number of third-level delegations.
func (z *Zone) NumThirdLevel() int { return z.numThird }

// DomainName returns the rank-th delegated name. Ranks < NumSecondLevel are
// second-level ("d<rank>.nl."); the rest are third-level under a category
// ("d<rank>.co.nz.").
func (z *Zone) DomainName(rank int) (string, error) {
	if rank < 0 || rank >= z.Size() {
		return "", fmt.Errorf("zonedb: rank %d out of range [0,%d)", rank, z.Size())
	}
	if z.IsRoot() {
		return z.tldList[rank] + ".", nil
	}
	if rank < z.numSecond {
		return fmt.Sprintf("d%d.%s", rank, z.Origin), nil
	}
	cat := z.categories[(rank-z.numSecond)%len(z.categories)]
	return fmt.Sprintf("d%d.%s.%s", rank, cat, z.Origin), nil
}

// TLDs returns the root zone's delegated labels (nil for ccTLDs).
func (z *Zone) TLDs() []string { return z.tldList }

// Delegation maps any query name at or below a registered delegation to
// that delegation. It returns ok=false for the apex itself, for names not
// under the zone, and for names that resolve to no registered domain
// (which the authoritative server answers with NXDOMAIN).
func (z *Zone) Delegation(qname string) (string, bool) {
	qname = dnswire.CanonicalName(qname)
	if qname == z.Origin || !dnswire.IsSubdomain(qname, z.Origin) {
		return "", false
	}
	labels := dnswire.SplitLabels(qname)
	originLabels := dnswire.CountLabels(z.Origin)
	rel := labels[:len(labels)-originLabels] // labels below the origin

	if z.IsRoot() {
		tld := rel[len(rel)-1]
		if z.tlds[tld] {
			return tld + ".", true
		}
		return "", false
	}

	// Third-level registration: <d-label>.<category>.<origin>.
	if len(rel) >= 2 {
		cat := rel[len(rel)-1]
		if z.isCategory(cat) {
			dl := rel[len(rel)-2]
			if rank, ok := z.parseRank(dl); ok && rank >= z.numSecond && rank < z.Size() {
				// The category of a rank is fixed; reject mismatches.
				if z.categories[(rank-z.numSecond)%len(z.categories)] == cat {
					return dl + "." + cat + "." + z.Origin, true
				}
			}
			return "", false
		}
	}
	// Second-level registration: <d-label>.<origin>.
	dl := rel[len(rel)-1]
	if rank, ok := z.parseRank(dl); ok && rank < z.numSecond {
		return dl + "." + z.Origin, true
	}
	return "", false
}

func (z *Zone) isCategory(label string) bool {
	for _, c := range z.categories {
		if c == label {
			return true
		}
	}
	return false
}

// parseRank extracts the rank from a d<rank> label.
func (z *Zone) parseRank(label string) (int, bool) {
	if len(label) < 2 || label[0] != 'd' {
		return 0, false
	}
	n, err := strconv.Atoi(label[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	// Reject leading zeros so each rank has exactly one name.
	if label[1] == '0' && len(label) > 2 {
		return 0, false
	}
	return n, true
}

// Exists reports whether qname is the apex, a category cut, or at/below a
// registered delegation.
func (z *Zone) Exists(qname string) bool {
	qname = dnswire.CanonicalName(qname)
	if qname == z.Origin {
		return true
	}
	if !z.IsRoot() && z.numThird > 0 {
		labels := dnswire.SplitLabels(qname)
		originLabels := dnswire.CountLabels(z.Origin)
		if len(labels) == originLabels+1 && z.isCategory(labels[0]) {
			return true // the category cut itself (empty non-terminal)
		}
	}
	_, ok := z.Delegation(qname)
	return ok
}

// IsSigned reports whether the delegation carries DS records. The decision
// is a deterministic hash of the name against the configured fraction.
func (z *Zone) IsSigned(delegation string) bool {
	if z.signedFraction >= 1 {
		return true
	}
	if z.signedFraction <= 0 {
		return false
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(dnswire.CanonicalName(delegation)))
	return float64(h.Sum64()%10000) < z.signedFraction*10000
}

// DelegationNS returns the child NS host names for a delegation; the hosts
// are deterministic so referrals are stable across runs. Out-of-zone hosts
// are used for half the domains so referrals sometimes need no glue,
// mirroring real registries.
func (z *Zone) DelegationNS(delegation string) []string {
	delegation = dnswire.CanonicalName(delegation)
	h := fnv.New32a()
	_, _ = h.Write([]byte(delegation))
	op := h.Sum32() % 100
	if op < 50 {
		return []string{"ns1." + delegation, "ns2." + delegation, "ns3." + delegation}
	}
	prov := op % 7
	return []string{
		fmt.Sprintf("ns1.dnsprovider%d.com.", prov),
		fmt.Sprintf("ns2.dnsprovider%d.com.", prov),
		fmt.Sprintf("ns3.dnsprovider%d.com.", prov),
	}
}

// DSRecords returns the DS RRSet for a signed delegation (empty otherwise).
func (z *Zone) DSRecords(delegation string) []dnswire.RR {
	if !z.IsSigned(delegation) {
		return nil
	}
	delegation = dnswire.CanonicalName(delegation)
	h := fnv.New64a()
	_, _ = h.Write([]byte(delegation))
	sum := h.Sum64()
	digest := make([]byte, 32)
	for i := range digest {
		digest[i] = byte(sum >> (uint(i) % 8 * 8))
	}
	// Four DS records per signed delegation: two keys (the outgoing and
	// incoming KSK of an algorithm rollover — .nl rolled to ECDSA during
	// the study period) times two digest types (SHA-256 and SHA-384).
	digest384 := make([]byte, 48)
	for i := range digest384 {
		digest384[i] = byte(sum >> (uint(i+3) % 8 * 8))
	}
	var out []dnswire.RR
	for _, key := range []struct {
		tag  uint16
		algo uint8
	}{{uint16(sum), 8}, {uint16(sum) + 1, 13}} {
		out = append(out,
			dnswire.RR{
				Name: delegation, Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.DSData{
					KeyTag: key.tag, Algorithm: key.algo,
					DigestType: 2, Digest: digest,
				},
			},
			dnswire.RR{
				Name: delegation, Class: dnswire.ClassIN, TTL: 3600,
				Data: dnswire.DSData{
					KeyTag: key.tag, Algorithm: key.algo,
					DigestType: 4, Digest: digest384,
				},
			},
		)
	}
	return out
}

// SOA returns the zone's SOA record.
func (z *Zone) SOA() dnswire.RR {
	return dnswire.RR{Name: z.Origin, Class: dnswire.ClassIN, TTL: z.soa.Minimum, Data: z.soa}
}

// DNSKEY returns the zone's apex DNSKEY RRSet.
func (z *Zone) DNSKEY() []dnswire.RR {
	return []dnswire.RR{{
		Name: z.Origin, Class: dnswire.ClassIN, TTL: 3600, Data: z.dnskey,
	}}
}

// ApexNS returns the zone's own NS RRSet.
func (z *Zone) ApexNS() []dnswire.RR {
	out := make([]dnswire.RR, len(z.ServerNames))
	for i, h := range z.ServerNames {
		out[i] = dnswire.RR{Name: z.Origin, Class: dnswire.ClassIN, TTL: 172800, Data: dnswire.NSData{Host: h}}
	}
	return out
}

// DefaultRootTLDs is a representative root-zone TLD set: the gTLDs and
// ccTLDs the workload generator references, so valid names resolve and
// Chromium-style random labels fall through to NXDOMAIN.
var DefaultRootTLDs = []string{
	"com", "net", "org", "info", "biz", "edu", "gov", "mil", "int", "arpa",
	"io", "dev", "app", "xyz", "online", "site", "shop", "club", "top",
	"nl", "nz", "de", "uk", "fr", "au", "jp", "cn", "in", "br", "ru", "it",
	"es", "ca", "se", "no", "fi", "dk", "be", "ch", "at", "pl", "cz", "id",
	"kr", "mx", "ar", "cl", "za", "ng", "eg", "tr", "sa", "ae", "il", "gr",
	"pt", "ie", "hu", "ro", "bg", "hr", "si", "sk", "lt", "lv", "ee", "ua",
	"us", "tv", "me", "cc", "ws", "fm", "ai", "co",
}
