package zonedb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dnscentral/internal/dnswire"
)

func newNL(t *testing.T) *Zone {
	t.Helper()
	z, err := NewCcTLD("nl", 10000, 0, 0.55, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func newNZ(t *testing.T) *Zone {
	t.Helper()
	z, err := NewCcTLD("nz", 1400, 5700, 0.3, []string{"ns1.dns.net.nz", "ns2.dns.net.nz"})
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func newRoot(t *testing.T) *Zone {
	t.Helper()
	z, err := NewRoot(DefaultRootTLDs, []string{"b.root-servers.net"})
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestZoneConstructorsValidate(t *testing.T) {
	if _, err := NewCcTLD(".", 10, 0, 0.5, []string{"ns1.x."}); err == nil {
		t.Error("root accepted as ccTLD")
	}
	if _, err := NewCcTLD("nl", 0, 0, 0.5, []string{"ns1.x."}); err == nil {
		t.Error("empty zone accepted")
	}
	if _, err := NewCcTLD("nl", 10, 0, 1.5, []string{"ns1.x."}); err == nil {
		t.Error("bad signedFraction accepted")
	}
	if _, err := NewCcTLD("nl", 10, 0, 0.5, nil); err == nil {
		t.Error("no server names accepted")
	}
	if _, err := NewRoot(nil, []string{"b.root-servers.net"}); err == nil {
		t.Error("empty root accepted")
	}
	if _, err := NewRoot([]string{"a.b"}, []string{"x."}); err == nil {
		t.Error("multi-label TLD accepted")
	}
}

func TestSizesMatchConfiguration(t *testing.T) {
	nl, nz := newNL(t), newNZ(t)
	if nl.Size() != 10000 || nl.NumSecondLevel() != 10000 || nl.NumThirdLevel() != 0 {
		t.Errorf("nl sizes: %d/%d/%d", nl.Size(), nl.NumSecondLevel(), nl.NumThirdLevel())
	}
	if nz.Size() != 7100 || nz.NumSecondLevel() != 1400 || nz.NumThirdLevel() != 5700 {
		t.Errorf("nz sizes: %d/%d/%d", nz.Size(), nz.NumSecondLevel(), nz.NumThirdLevel())
	}
}

func TestDomainNameShapes(t *testing.T) {
	nl, nz := newNL(t), newNZ(t)
	n, err := nl.DomainName(42)
	if err != nil || n != "d42.nl." {
		t.Errorf("nl rank 42 = %q, %v", n, err)
	}
	n, err = nz.DomainName(100) // second level
	if err != nil || n != "d100.nz." {
		t.Errorf("nz rank 100 = %q, %v", n, err)
	}
	n, err = nz.DomainName(1400) // first third-level
	if err != nil || !strings.HasSuffix(n, ".nz.") || len(strings.Split(strings.TrimSuffix(n, "."), ".")) != 3 {
		t.Errorf("nz rank 1400 = %q, %v", n, err)
	}
	if _, err := nl.DomainName(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := nl.DomainName(10000); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestDelegationLookup(t *testing.T) {
	nl := newNL(t)
	cases := []struct {
		q    string
		want string
		ok   bool
	}{
		{"d0.nl.", "d0.nl.", true},
		{"www.d0.nl.", "d0.nl.", true},
		{"a.b.c.d9999.nl.", "d9999.nl.", true},
		{"d10000.nl.", "", false},   // beyond zone size
		{"nl.", "", false},          // the apex is not a delegation
		{"example.com.", "", false}, // out of zone
		{"nosuch.nl.", "", false},
		{"d01.nl.", "", false}, // leading zero form is not registered
	}
	for _, c := range cases {
		got, ok := nl.Delegation(c.q)
		if ok != c.ok || got != c.want {
			t.Errorf("Delegation(%q) = %q,%v; want %q,%v", c.q, got, ok, c.want, c.ok)
		}
	}
}

func TestNZThirdLevelDelegation(t *testing.T) {
	nz := newNZ(t)
	name, err := nz.DomainName(1400)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := nz.Delegation("www." + name)
	if !ok || got != name {
		t.Errorf("Delegation(www.%s) = %q,%v", name, got, ok)
	}
	// The same d-label under the wrong category must not exist.
	parts := strings.SplitN(name, ".", 2)
	wrongCat := "co"
	if strings.HasPrefix(parts[1], "co.") {
		wrongCat = "org"
	}
	bad := parts[0] + "." + wrongCat + ".nz."
	if bad != name {
		if _, ok := nz.Delegation(bad); ok {
			t.Errorf("wrong-category name %q accepted", bad)
		}
	}
	// A second-level rank must not be resolvable as third level.
	if _, ok := nz.Delegation("d100.co.nz."); ok {
		t.Error("second-level rank matched under category")
	}
}

func TestExists(t *testing.T) {
	nz := newNZ(t)
	if !nz.Exists("nz.") {
		t.Error("apex must exist")
	}
	if !nz.Exists("co.nz.") {
		t.Error("category cut must exist")
	}
	if nz.Exists("qqq.nz.") {
		t.Error("unregistered name exists")
	}
	name, _ := nz.DomainName(0)
	if !nz.Exists(name) || !nz.Exists("mail."+name) {
		t.Errorf("registered name %s must exist", name)
	}
}

func TestRootDelegations(t *testing.T) {
	root := newRoot(t)
	if !root.IsRoot() {
		t.Fatal("not root")
	}
	if root.Size() != len(DefaultRootTLDs) {
		t.Errorf("root size = %d", root.Size())
	}
	got, ok := root.Delegation("www.example.nl.")
	if !ok || got != "nl." {
		t.Errorf("Delegation(www.example.nl.) = %q,%v", got, ok)
	}
	if _, ok := root.Delegation("chromium-junk-xyzzy."); ok {
		t.Error("random TLD delegated")
	}
	if _, ok := root.Delegation("sub.chromium-junk-xyzzy."); ok {
		t.Error("name under random TLD delegated")
	}
	name, err := root.DomainName(0)
	if err != nil || !strings.HasSuffix(name, ".") {
		t.Errorf("root DomainName = %q, %v", name, err)
	}
}

func TestSignedFractionApproximate(t *testing.T) {
	nl := newNL(t)
	signed := 0
	const n = 5000
	for rank := 0; rank < n; rank++ {
		name, _ := nl.DomainName(rank)
		if nl.IsSigned(name) {
			signed++
		}
	}
	frac := float64(signed) / n
	if frac < 0.50 || frac > 0.60 {
		t.Errorf("signed fraction = %v, want ~0.55", frac)
	}
}

func TestIsSignedDeterministic(t *testing.T) {
	nl := newNL(t)
	name, _ := nl.DomainName(77)
	if nl.IsSigned(name) != nl.IsSigned(name) {
		t.Error("IsSigned not deterministic")
	}
}

func TestSignedEdgeFractions(t *testing.T) {
	all, _ := NewCcTLD("nl", 100, 0, 1, []string{"ns1.dns.nl"})
	none, _ := NewCcTLD("nl", 100, 0, 0, []string{"ns1.dns.nl"})
	for rank := 0; rank < 100; rank++ {
		name, _ := all.DomainName(rank)
		if !all.IsSigned(name) {
			t.Fatalf("fraction=1 left %s unsigned", name)
		}
		if none.IsSigned(name) {
			t.Fatalf("fraction=0 signed %s", name)
		}
	}
}

func TestDSRecordsOnlyWhenSigned(t *testing.T) {
	nl := newNL(t)
	for rank := 0; rank < 200; rank++ {
		name, _ := nl.DomainName(rank)
		ds := nl.DSRecords(name)
		if nl.IsSigned(name) {
			if len(ds) != 4 {
				t.Fatalf("signed %s has %d DS records, want 4", name, len(ds))
			}
			if ds[0].Data.Type() != dnswire.TypeDS || ds[0].Name != name {
				t.Fatalf("DS record malformed: %v", ds[0])
			}
		} else if len(ds) != 0 {
			t.Fatalf("unsigned %s has DS records", name)
		}
	}
}

func TestDelegationNSStable(t *testing.T) {
	nl := newNL(t)
	name, _ := nl.DomainName(5)
	a, b := nl.DelegationNS(name), nl.DelegationNS(name)
	if len(a) != 3 || len(b) != 3 || a[0] != b[0] || a[1] != b[1] || a[2] != b[2] {
		t.Errorf("NS set unstable: %v vs %v", a, b)
	}
	for _, h := range a {
		if dnswire.ValidateName(h) != nil {
			t.Errorf("invalid NS host %q", h)
		}
	}
}

func TestApexRecords(t *testing.T) {
	nl := newNL(t)
	soa := nl.SOA()
	if soa.Name != "nl." || soa.Data.Type() != dnswire.TypeSOA {
		t.Errorf("SOA = %v", soa)
	}
	keys := nl.DNSKEY()
	if len(keys) != 1 || keys[0].Data.Type() != dnswire.TypeDNSKEY {
		t.Errorf("DNSKEY = %v", keys)
	}
	ns := nl.ApexNS()
	if len(ns) != 2 || ns[0].Data.(dnswire.NSData).Host != "ns1.dns.nl." {
		t.Errorf("ApexNS = %v", ns)
	}
}

// TestPropertyEveryRankRoundTrips checks DomainName → Delegation is the
// identity for every zone shape.
func TestPropertyEveryRankRoundTrips(t *testing.T) {
	nl, nz, root := newNL(t), newNZ(t), newRoot(t)
	cfg := &quick.Config{MaxCount: 300}
	for _, z := range []*Zone{nl, nz, root} {
		z := z
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			rank := r.Intn(z.Size())
			name, err := z.DomainName(rank)
			if err != nil {
				return false
			}
			got, ok := z.Delegation(name)
			if !ok || got != name {
				return false
			}
			// Any label prefixed under the delegation maps back too.
			got, ok = z.Delegation("xx." + name)
			return ok && got == name
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("zone %s: %v", z.Origin, err)
		}
	}
}

func BenchmarkDelegationLookup(b *testing.B) {
	z, err := NewCcTLD("nl", 5_900_000, 0, 0.55, []string{"ns1.dns.nl"})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 1024)
	for i := range names {
		names[i], _ = z.DomainName(i * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := z.Delegation(names[i%len(names)]); !ok {
			b.Fatal("miss")
		}
	}
}
