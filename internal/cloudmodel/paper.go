package cloudmodel

import (
	"time"

	"dnscentral/internal/astrie"
)

// This file records the paper's published numbers verbatim, for the
// experiment harness to print next to measured values in EXPERIMENTS.md.

// PaperTable2Row describes one dataset-configuration row (Table 2).
type PaperTable2Row struct {
	Vantage   Vantage
	Week      Week
	NSSet     string // e.g. "4A" = 4 anycast servers
	Analyzed  string
	ZoneSize  int // delegations
}

// PaperTable2 reproduces Table 2.
var PaperTable2 = []PaperTable2Row{
	{VantageNL, W2018, "4A", "2A", 5_800_000},
	{VantageNL, W2019, "4A", "2A", 5_800_000},
	{VantageNL, W2020, "3A", "2A", 5_900_000},
	{VantageNZ, W2018, "6A,1U", "5A,1U", 720_000},
	{VantageNZ, W2019, "6A,1U", "5A,1U", 710_000},
	{VantageNZ, W2020, "6A,1U", "5A,1U", 710_000},
}

// NZSecondLevel and NZThirdLevel record the paper's .nz registration split
// ("140-141K second-level and 569-580K third-level domains").
const (
	NZSecondLevel = 140_500
	NZThirdLevel  = 574_500
)

// PaperTable3Row is one dataset row of Table 3.
type PaperTable3Row struct {
	Vantage      Vantage
	Week         Week
	TotalQueries float64
	ValidQueries float64
	Resolvers    int
	ASes         int
}

// PaperTable3 reproduces Table 3.
var PaperTable3 = []PaperTable3Row{
	{VantageNL, W2018, 7.29e9, 6.53e9, 2_090_000, 41276},
	{VantageNL, W2019, 10.16e9, 9.05e9, 2_180_000, 42727},
	{VantageNL, W2020, 13.75e9, 11.88e9, 1_990_000, 41716},
	{VantageNZ, W2018, 2.95e9, 2.00e9, 1_280_000, 37623},
	{VantageNZ, W2019, 3.48e9, 2.81e9, 1_420_000, 39601},
	{VantageNZ, W2020, 4.57e9, 3.03e9, 1_310_000, 38505},
	{VantageBRoot, W2018, 2.68e9, 0.93e9, 4_230_000, 45210},
	{VantageBRoot, W2019, 4.13e9, 1.43e9, 4_130_000, 48154},
	{VantageBRoot, W2020, 6.70e9, 1.34e9, 6_010_000, 51820},
}

// PaperFigure1CloudShare records the approximate stacked totals of
// Figure 1: the five providers' combined share of all queries.
var PaperFigure1CloudShare = map[Vantage]map[Week]float64{
	VantageNL:    {W2018: 0.31, W2019: 0.34, W2020: 0.33},
	VantageNZ:    {W2018: 0.27, W2019: 0.29, W2020: 0.29},
	VantageBRoot: {W2018: 0.057, W2019: 0.073, W2020: 0.087},
}

// PaperTable4 reproduces Tables 4 (w2020) and 7 (w2019): Google's query
// and resolver split between its public DNS ranges and the rest of its
// infrastructure.
type PaperGoogleSplit struct {
	Week           Week
	Vantage        Vantage
	TotalQueries   float64
	PublicQueries  float64
	TotalResolvers int
	PublicResolv   int
}

// PaperTable4 holds the w2020 and w2019 Google splits.
var PaperTable4 = []PaperGoogleSplit{
	{W2020, VantageNL, 1.81e9, 1.57e9, 23943, 3750},
	{W2020, VantageNZ, 328.7e6, 290.7e6, 21230, 3840},
	{W2019, VantageNL, 1.6e9, 1.49e9, 23344, 3581},
	{W2019, VantageNZ, 263.8e6, 222.9e6, 20089, 3575},
}

// PaperTable5Cell is one provider/year row of Table 5 for one ccTLD.
type PaperTable5Cell struct {
	IPv4, IPv6, UDP, TCP float64
}

// PaperTable5 reproduces Table 5 (query distribution per CP for the
// ccTLDs). Index: provider → week → vantage.
var PaperTable5 = map[astrie.Provider]map[Week]map[Vantage]PaperTable5Cell{
	astrie.ProviderGoogle: {
		W2018: {VantageNL: {0.66, 0.34, 1, 0}, VantageNZ: {0.61, 0.39, 1, 0}},
		W2019: {VantageNL: {0.49, 0.51, 1, 0}, VantageNZ: {0.54, 0.46, 1, 0}},
		W2020: {VantageNL: {0.52, 0.48, 1, 0}, VantageNZ: {0.54, 0.46, 1, 0}},
	},
	astrie.ProviderAmazon: {
		W2018: {VantageNL: {1, 0, 1, 0}, VantageNZ: {1, 0, 0.98, 0.02}},
		W2019: {VantageNL: {0.98, 0.02, 0.98, 0.02}, VantageNZ: {0.97, 0.03, 0.96, 0.04}},
		W2020: {VantageNL: {0.97, 0.03, 0.95, 0.05}, VantageNZ: {0.96, 0.04, 0.95, 0.05}},
	},
	astrie.ProviderMicrosoft: {
		W2018: {VantageNL: {1, 0, 1, 0}, VantageNZ: {1, 0, 1, 0}},
		W2019: {VantageNL: {1, 0, 1, 0}, VantageNZ: {1, 0, 1, 0}},
		W2020: {VantageNL: {1, 0, 1, 0}, VantageNZ: {1, 0, 1, 0}},
	},
	astrie.ProviderFacebook: {
		W2018: {VantageNL: {0.52, 0.48, 0.79, 0.21}, VantageNZ: {0.51, 0.49, 0.52, 0.48}},
		W2019: {VantageNL: {0.24, 0.76, 0.85, 0.15}, VantageNZ: {0.19, 0.81, 0.83, 0.17}},
		W2020: {VantageNL: {0.24, 0.76, 0.86, 0.14}, VantageNZ: {0.17, 0.83, 0.85, 0.15}},
	},
	astrie.ProviderCloudflare: {
		W2018: {VantageNL: {0.54, 0.46, 1, 0}, VantageNZ: {0.54, 0.46, 1, 0}},
		W2019: {VantageNL: {0.57, 0.43, 0.99, 0.01}, VantageNZ: {0.56, 0.44, 1, 0}},
		W2020: {VantageNL: {0.51, 0.49, 0.98, 0.02}, VantageNZ: {0.49, 0.51, 0.99, 0.01}},
	},
}

// PaperTable6Row reproduces Table 6 (Amazon and Microsoft resolver counts
// by family, week 2020).
type PaperTable6Row struct {
	Provider astrie.Provider
	Vantage  Vantage
	Total    int
	V4       int
	V6       int
}

// PaperTable6 holds the four published rows.
var PaperTable6 = []PaperTable6Row{
	{astrie.ProviderAmazon, VantageNL, 38317, 37640, 677},
	{astrie.ProviderAmazon, VantageNZ, 34645, 33908, 737},
	{astrie.ProviderMicrosoft, VantageNL, 14494, 14069, 425},
	{astrie.ProviderMicrosoft, VantageNZ, 10206, 9738, 468},
}

// PaperTruncation records §4.4's truncated-UDP-answer ratios for w2020 .nl.
var PaperTruncation = map[astrie.Provider]float64{
	astrie.ProviderFacebook:  0.1716,
	astrie.ProviderGoogle:    0.0004,
	astrie.ProviderMicrosoft: 0.0001,
}

// PaperFigure6 records the §4.4/Figure 6 EDNS(0) anchor points: ~30% of
// Facebook's UDP queries advertise 512 bytes; ~24% of Google's advertise
// at most 1232.
var PaperFigure6 = struct {
	FacebookAt512 float64
	GoogleAt1232  float64
}{FacebookAt512: 0.30, GoogleAt1232: 0.24}

// GoogleQminDeployment is the confirmed rollout month (§4.2.1: "Q-min
// deployment did take place in Dec. 2019").
var GoogleQminDeployment = time.Date(2019, time.December, 1, 0, 0, 0, 0, time.UTC)

// Month identifies one month of the Figure 3 longitudinal series.
type Month struct {
	Year  int
	Month time.Month
}

// String formats the month as "2019-12".
func (m Month) String() string {
	return time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC).Format("2006-01")
}

// Figure3Months is the monthly series of Figure 3 (Nov 2018 – Apr 2020).
var Figure3Months = func() []Month {
	var out []Month
	t := time.Date(2018, time.November, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2020, time.April, 1, 0, 0, 0, 0, time.UTC)
	for !t.After(end) {
		out = append(out, Month{t.Year(), t.Month()})
		t = t.AddDate(0, 1, 0)
	}
	return out
}()

// GoogleMonthlyProfile returns Google's behavior for one Figure-3 month at
// a ccTLD vantage: whether Q-min is deployed and whether the .nz
// cyclic-dependency anomaly (Feb 2020, §4.2.1) inflates A/AAAA traffic.
func GoogleMonthlyProfile(v Vantage, m Month) (qmin bool, anomaly bool) {
	t := time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC)
	qmin = !t.Before(GoogleQminDeployment)
	anomaly = v == VantageNZ && m.Year == 2020 && m.Month == time.February
	return qmin, anomaly
}
