// Package cloudmodel holds the calibrated behavioral model of the five
// cloud providers and the three vantage points. Two kinds of data live
// here:
//
//  1. Behavior profiles (Profile) that drive the synthetic workload
//     generator: per provider, per vantage, per measurement week — traffic
//     share, IPv6 share, deliberate TCP share, QNAME-minimization and
//     DNSSEC-validation fleet fractions, EDNS(0) size mix, junk ratio,
//     resolver population and public-DNS split.
//  2. The paper's published numbers (Paper* variables) that the
//     experiment harness compares measured values against in
//     EXPERIMENTS.md.
//
// Profile values are calibrated so that the analysis pipeline reproduces
// the published *shape*: who wins, by what factor, where the crossovers
// are. They are not claimed to be exact per-query reconstructions.
package cloudmodel

import (
	"fmt"

	"dnscentral/internal/astrie"
)

// Vantage is a measurement vantage point.
type Vantage string

// The three vantage points of the study.
const (
	VantageNL    Vantage = "nl"
	VantageNZ    Vantage = "nz"
	VantageBRoot Vantage = "b-root"
)

// Vantages lists all vantage points in the paper's order.
var Vantages = []Vantage{VantageNL, VantageNZ, VantageBRoot}

// Week is a yearly snapshot identifier (Table 2).
type Week string

// The three measurement weeks.
const (
	W2018 Week = "w2018"
	W2019 Week = "w2019"
	W2020 Week = "w2020"
)

// Weeks lists all snapshots in order.
var Weeks = []Week{W2018, W2019, W2020}

// Year returns the calendar year of the week's snapshot.
func (w Week) Year() int {
	switch w {
	case W2018:
		return 2018
	case W2019:
		return 2019
	default:
		return 2020
	}
}

// Profile describes one provider's behavior at one vantage in one week.
type Profile struct {
	// Share is the provider's fraction of ALL queries at the vantage
	// (Figure 1).
	Share float64
	// V6Share is the fraction of the provider's queries sent over IPv6
	// (Table 5).
	V6Share float64
	// TCPShare is the fraction of queries deliberately sent over TCP
	// (Table 5); truncation-induced TCP retries come on top of this.
	TCPShare float64
	// QminShare is the fraction of the provider's query volume issued by
	// QNAME-minimizing resolvers (§4.2.1).
	QminShare float64
	// ValidateShare is the fraction issued by DNSSEC-validating resolvers
	// (§4.2.2).
	ValidateShare float64
	// DSShare is the fraction of the provider's queries that are DS
	// lookups (§4.2.2: Google sent ~10M DS of 1.8B total at .nl in w2020;
	// Cloudflare's DS share is visibly higher than its DNSKEY share).
	DSShare float64
	// DNSKEYShare is the fraction that are DNSKEY lookups (at most once
	// per TTL, hence tiny).
	DNSKEYShare float64
	// JunkShare is the fraction of the provider's queries for
	// non-existing names (Figure 4).
	JunkShare float64
	// EDNSSizes is the advertised EDNS(0) UDP size mix (Figure 6);
	// size 0 means "no EDNS". Fractions sum to 1.
	EDNSSizes map[uint16]float64
	// Resolvers is the number of distinct resolver addresses
	// (Tables 4 and 6).
	Resolvers int
	// ResolverV6Frac is the fraction of resolver addresses that are IPv6
	// (Table 6).
	ResolverV6Frac float64
	// PublicDNSShare is the fraction of the provider's queries sent from
	// its public-DNS ranges (Table 4: 86.5% for Google at .nl in w2020).
	PublicDNSShare float64
	// PublicResolverFrac is the fraction of resolver addresses in the
	// public ranges (Table 4: 15.6%).
	PublicResolverFrac float64
}

// VantageWeek is the complete model of one vantage in one week.
type VantageWeek struct {
	Vantage Vantage
	Week    Week
	// TotalQueries is the real-world total (Table 3), used only for
	// documentation and scale factors.
	TotalQueries float64
	// ValidShare is the fraction of all queries answered NOERROR
	// (Table 3 valid/total).
	ValidShare float64
	// Resolvers and ASes are the real-world distinct counts (Table 3).
	Resolvers int
	ASes      int
	// OtherJunkShare is the junk fraction of long-tail (non-cloud)
	// queries, derived so the vantage-wide junk matches ValidShare.
	OtherJunkShare float64
	// Providers holds the per-provider profiles.
	Providers map[astrie.Provider]Profile
}

// CloudShare sums the provider shares (Figure 1's stacked total).
func (vw *VantageWeek) CloudShare() float64 {
	sum := 0.0
	for _, p := range vw.Providers {
		sum += p.Share
	}
	return sum
}

// Get returns the model for a vantage/week pair.
func Get(v Vantage, w Week) (*VantageWeek, error) {
	vw, ok := Model[v][w]
	if !ok {
		return nil, fmt.Errorf("cloudmodel: no model for %s/%s", v, w)
	}
	return vw, nil
}

// Standard EDNS size mixes. Facebook's heavy 512-byte usage is the §4.4
// truncation driver; Google/Microsoft advertise mostly large buffers.
var (
	ednsFacebook = map[uint16]float64{512: 0.30, 1232: 0.20, 1452: 0.25, 4096: 0.25}
	ednsGoogle   = map[uint16]float64{0: 0.02, 512: 0.002, 1232: 0.218, 4096: 0.76}
	ednsMSFT     = map[uint16]float64{0: 0.03, 1232: 0.22, 4096: 0.75}
	ednsAmazon   = map[uint16]float64{0: 0.05, 512: 0.05, 1232: 0.15, 4096: 0.75}
	ednsCF       = map[uint16]float64{1232: 0.30, 1452: 0.40, 4096: 0.30}
)

// gp builds a Google profile; helpers keep the literal table readable.
func gp(share, v6, tcp, qmin, junk float64, resolvers int, v6frac, pubShare, pubResolv float64) Profile {
	return Profile{
		Share: share, V6Share: v6, TCPShare: tcp, QminShare: qmin,
		ValidateShare: 0.95, DSShare: 0.006, DNSKEYShare: 0.0005,
		JunkShare: junk, EDNSSizes: ednsGoogle,
		Resolvers: resolvers, ResolverV6Frac: v6frac,
		PublicDNSShare: pubShare, PublicResolverFrac: pubResolv,
	}
}

func amzn(share, v6, tcp, qmin, junk float64, resolvers int, v6frac float64) Profile {
	return Profile{
		Share: share, V6Share: v6, TCPShare: tcp, QminShare: qmin,
		ValidateShare: 0.7, DSShare: 0.02, DNSKEYShare: 0.001,
		JunkShare: junk, EDNSSizes: ednsAmazon,
		Resolvers: resolvers, ResolverV6Frac: v6frac,
	}
}

func msft(share, junk float64, resolvers int, v6frac float64) Profile {
	// Microsoft: IPv4-only, UDP-only, no Q-min, and the paper's "except
	// for one" non-validating provider (§4.2.2).
	return Profile{
		Share: share, V6Share: 0, TCPShare: 0, QminShare: 0,
		ValidateShare: 0, DSShare: 0, DNSKEYShare: 0,
		JunkShare: junk, EDNSSizes: ednsMSFT,
		Resolvers: resolvers, ResolverV6Frac: v6frac,
	}
}

func fb(share, v6, tcp, qmin, junk float64, resolvers int) Profile {
	return Profile{
		Share: share, V6Share: v6, TCPShare: tcp, QminShare: qmin,
		ValidateShare: 0.9, DSShare: 0.03, DNSKEYShare: 0.002,
		JunkShare: junk, EDNSSizes: ednsFacebook,
		Resolvers: resolvers, ResolverV6Frac: 0.45,
	}
}

func cf(share, v6, tcp, qmin, junk float64, resolvers int) Profile {
	return Profile{
		Share: share, V6Share: v6, TCPShare: tcp, QminShare: qmin,
		ValidateShare: 1.0, DSShare: 0.09, DNSKEYShare: 0.004,
		JunkShare: junk, EDNSSizes: ednsCF,
		Resolvers: resolvers, ResolverV6Frac: 0.45,
		PublicDNSShare: 0.95, PublicResolverFrac: 0.6,
	}
}

// Model is the full calibrated dataset. Shares follow Figure 1; IPv6/TCP
// follow Table 5; resolver counts follow Tables 4 and 6; valid-query
// fractions follow Table 3; Q-min fleet fractions encode the §4.2.1
// adoption timeline (Google deployed in Dec 2019, Cloudflare had deployed
// earlier, Facebook and — at .nz — Amazon grew NS shares by 2020).
var Model = map[Vantage]map[Week]*VantageWeek{
	VantageNL: {
		W2018: {
			Vantage: VantageNL, Week: W2018,
			TotalQueries: 7.29e9, ValidShare: 6.53 / 7.29,
			Resolvers: 2_090_000, ASes: 41276,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.140, 0.34, 0, 0, 0.10, 21000, 0.30, 0.86, 0.15),
				astrie.ProviderAmazon:     amzn(0.070, 0.00, 0, 0, 0.12, 30000, 0.002),
				astrie.ProviderMicrosoft:  msft(0.050, 0.15, 12000, 0.02),
				astrie.ProviderFacebook:   fb(0.020, 0.48, 0.35, 0, 0.08, 2600),
				astrie.ProviderCloudflare: cf(0.030, 0.46, 0, 0.20, 0.12, 1500),
			},
		},
		W2019: {
			Vantage: VantageNL, Week: W2019,
			TotalQueries: 10.16e9, ValidShare: 9.05 / 10.16,
			Resolvers: 2_180_000, ASes: 42727,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.150, 0.51, 0, 0, 0.10, 23344, 0.32, 0.893, 0.154),
				astrie.ProviderAmazon:     amzn(0.078, 0.02, 0.02, 0, 0.12, 34000, 0.010),
				astrie.ProviderMicrosoft:  msft(0.050, 0.15, 13500, 0.025),
				astrie.ProviderFacebook:   fb(0.022, 0.76, 0.22, 0, 0.08, 2800),
				astrie.ProviderCloudflare: cf(0.038, 0.43, 0.01, 0.55, 0.14, 1700),
			},
		},
		W2020: {
			Vantage: VantageNL, Week: W2020,
			TotalQueries: 13.75e9, ValidShare: 11.88 / 13.75,
			Resolvers: 1_990_000, ASes: 41716,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.132, 0.48, 0, 0.86, 0.07, 23943, 0.33, 0.865, 0.156),
				astrie.ProviderAmazon:     amzn(0.080, 0.03, 0.05, 0.10, 0.09, 38317, 0.018),
				astrie.ProviderMicrosoft:  msft(0.050, 0.11, 14494, 0.030),
				astrie.ProviderFacebook:   fb(0.025, 0.76, 0.12, 0.80, 0.06, 3000),
				astrie.ProviderCloudflare: cf(0.045, 0.49, 0.02, 1.0, 0.08, 1900),
			},
		},
	},
	VantageNZ: {
		W2018: {
			Vantage: VantageNZ, Week: W2018,
			TotalQueries: 2.95e9, ValidShare: 2.00 / 2.95,
			Resolvers: 1_280_000, ASes: 37623,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.070, 0.39, 0, 0, 0.11, 18000, 0.30, 0.86, 0.17),
				astrie.ProviderAmazon:     amzn(0.090, 0.00, 0.02, 0, 0.13, 27000, 0.002),
				astrie.ProviderMicrosoft:  msft(0.060, 0.16, 8500, 0.03),
				astrie.ProviderFacebook:   fb(0.020, 0.49, 0.75, 0, 0.09, 2400),
				astrie.ProviderCloudflare: cf(0.030, 0.46, 0, 0.20, 0.13, 1400),
			},
		},
		W2019: {
			Vantage: VantageNZ, Week: W2019,
			TotalQueries: 3.48e9, ValidShare: 2.81 / 3.48,
			Resolvers: 1_420_000, ASes: 39601,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.076, 0.46, 0, 0, 0.11, 20089, 0.31, 0.844, 0.177),
				astrie.ProviderAmazon:     amzn(0.090, 0.03, 0.04, 0, 0.13, 31000, 0.012),
				astrie.ProviderMicrosoft:  msft(0.060, 0.16, 9500, 0.04),
				astrie.ProviderFacebook:   fb(0.024, 0.81, 0.25, 0, 0.09, 2600),
				astrie.ProviderCloudflare: cf(0.034, 0.44, 0, 0.55, 0.15, 1600),
			},
		},
		W2020: {
			Vantage: VantageNZ, Week: W2020,
			TotalQueries: 4.57e9, ValidShare: 3.03 / 4.57,
			Resolvers: 1_310_000, ASes: 38505,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.072, 0.46, 0, 0.86, 0.08, 21230, 0.32, 0.884, 0.181),
				astrie.ProviderAmazon:     amzn(0.094, 0.04, 0.05, 0.35, 0.10, 34645, 0.021),
				astrie.ProviderMicrosoft:  msft(0.060, 0.12, 10206, 0.046),
				astrie.ProviderFacebook:   fb(0.026, 0.83, 0.14, 0.80, 0.07, 2800),
				astrie.ProviderCloudflare: cf(0.040, 0.51, 0, 1.0, 0.09, 1800),
			},
		},
	},
	VantageBRoot: {
		W2018: {
			Vantage: VantageBRoot, Week: W2018,
			TotalQueries: 2.68e9, ValidShare: 0.93 / 2.68,
			Resolvers: 4_230_000, ASes: 45210,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.025, 0.35, 0, 0, 0.30, 20000, 0.30, 0.86, 0.15),
				astrie.ProviderAmazon:     amzn(0.013, 0.00, 0, 0, 0.35, 24000, 0.002),
				astrie.ProviderMicrosoft:  msft(0.010, 0.40, 9000, 0.02),
				astrie.ProviderFacebook:   fb(0.004, 0.48, 0.30, 0, 0.25, 2000),
				astrie.ProviderCloudflare: cf(0.008, 0.46, 0, 0.20, 0.35, 1200),
			},
		},
		W2019: {
			Vantage: VantageBRoot, Week: W2019,
			TotalQueries: 4.13e9, ValidShare: 1.43 / 4.13,
			Resolvers: 4_130_000, ASes: 48154,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.030, 0.50, 0, 0, 0.28, 21000, 0.31, 0.87, 0.15),
				astrie.ProviderAmazon:     amzn(0.016, 0.02, 0.01, 0, 0.33, 27000, 0.01),
				astrie.ProviderMicrosoft:  msft(0.012, 0.38, 10000, 0.025),
				astrie.ProviderFacebook:   fb(0.005, 0.78, 0.20, 0, 0.24, 2200),
				// The one exception in Figure 4: Cloudflare's junk at
				// B-Root in 2019 was comparable to the overall junk level.
				astrie.ProviderCloudflare: cf(0.010, 0.44, 0, 0.55, 0.62, 1400),
			},
		},
		W2020: {
			Vantage: VantageBRoot, Week: W2020,
			TotalQueries: 6.70e9, ValidShare: 1.34 / 6.70,
			Resolvers: 6_010_000, ASes: 51820,
			Providers: map[astrie.Provider]Profile{
				astrie.ProviderGoogle:     gp(0.035, 0.48, 0, 0.86, 0.22, 23000, 0.32, 0.87, 0.15),
				astrie.ProviderAmazon:     amzn(0.020, 0.03, 0.02, 0.10, 0.28, 30000, 0.018),
				astrie.ProviderMicrosoft:  msft(0.015, 0.35, 11000, 0.03),
				astrie.ProviderFacebook:   fb(0.005, 0.80, 0.12, 0.80, 0.20, 2400),
				astrie.ProviderCloudflare: cf(0.012, 0.49, 0, 1.0, 0.30, 1500),
			},
		},
	},
}

func init() {
	// Derive OtherJunkShare per vantage/week so the overall junk matches
	// Table 3: junk_total = Σ share_p·junk_p + share_other·junk_other.
	for _, weeks := range Model {
		for _, vw := range weeks {
			cloudShare, cloudJunk := 0.0, 0.0
			for _, p := range vw.Providers {
				cloudShare += p.Share
				cloudJunk += p.Share * p.JunkShare
			}
			wantJunk := 1 - vw.ValidShare
			otherShare := 1 - cloudShare
			if otherShare <= 0 {
				vw.OtherJunkShare = wantJunk
				continue
			}
			oj := (wantJunk - cloudJunk) / otherShare
			if oj < 0 {
				oj = 0
			}
			if oj > 1 {
				oj = 1
			}
			vw.OtherJunkShare = oj
		}
	}
}
