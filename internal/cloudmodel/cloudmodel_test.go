package cloudmodel

import (
	"math"
	"testing"
	"time"

	"dnscentral/internal/astrie"
)

func TestModelCoversAllVantagesAndWeeks(t *testing.T) {
	for _, v := range Vantages {
		for _, w := range Weeks {
			vw, err := Get(v, w)
			if err != nil {
				t.Fatalf("Get(%s,%s): %v", v, w, err)
			}
			if vw.Vantage != v || vw.Week != w {
				t.Errorf("%s/%s mislabeled: %s/%s", v, w, vw.Vantage, vw.Week)
			}
			if len(vw.Providers) != 5 {
				t.Errorf("%s/%s has %d providers", v, w, len(vw.Providers))
			}
		}
	}
	if _, err := Get("mars", W2018); err == nil {
		t.Error("unknown vantage accepted")
	}
}

func TestProfileInvariants(t *testing.T) {
	for _, v := range Vantages {
		for _, w := range Weeks {
			vw, _ := Get(v, w)
			for prov, p := range vw.Providers {
				check01 := func(name string, x float64) {
					if x < 0 || x > 1 || math.IsNaN(x) {
						t.Errorf("%s/%s/%s: %s = %v out of [0,1]", v, w, prov, name, x)
					}
				}
				check01("Share", p.Share)
				check01("V6Share", p.V6Share)
				check01("TCPShare", p.TCPShare)
				check01("QminShare", p.QminShare)
				check01("ValidateShare", p.ValidateShare)
				check01("JunkShare", p.JunkShare)
				check01("ResolverV6Frac", p.ResolverV6Frac)
				check01("PublicDNSShare", p.PublicDNSShare)
				check01("PublicResolverFrac", p.PublicResolverFrac)
				if p.Resolvers <= 0 {
					t.Errorf("%s/%s/%s: no resolvers", v, w, prov)
				}
				sum := 0.0
				for size, f := range p.EDNSSizes {
					if f < 0 {
						t.Errorf("%s/%s/%s: negative EDNS fraction at %d", v, w, prov, size)
					}
					sum += f
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Errorf("%s/%s/%s: EDNS fractions sum to %v", v, w, prov, sum)
				}
			}
		}
	}
}

func TestCloudShareMatchesFigure1Shape(t *testing.T) {
	// ccTLDs: >25% and around 1/3 for .nl; B-Root: under 10%, growing.
	for _, w := range Weeks {
		nl, _ := Get(VantageNL, w)
		if s := nl.CloudShare(); s < 0.30 || s > 0.36 {
			t.Errorf(".nl %s cloud share = %v", w, s)
		}
		nz, _ := Get(VantageNZ, w)
		if s := nz.CloudShare(); s < 0.24 || s > 0.30 {
			t.Errorf(".nz %s cloud share = %v", w, s)
		}
	}
	b2020, _ := Get(VantageBRoot, W2020)
	if s := b2020.CloudShare(); math.Abs(s-0.087) > 0.01 {
		t.Errorf("B-Root w2020 cloud share = %v, want ≈0.087", s)
	}
	b2018, _ := Get(VantageBRoot, W2018)
	b2019, _ := Get(VantageBRoot, W2019)
	if !(b2018.CloudShare() < b2019.CloudShare() && b2019.CloudShare() < b2020.CloudShare()) {
		t.Error("B-Root cloud share must grow year over year (Figure 1c)")
	}
}

func TestGoogleBiggerAtNLThanNZ(t *testing.T) {
	for _, w := range Weeks {
		nl, _ := Get(VantageNL, w)
		nz, _ := Get(VantageNZ, w)
		if nl.Providers[astrie.ProviderGoogle].Share <= nz.Providers[astrie.ProviderGoogle].Share {
			t.Errorf("%s: Google .nl share must exceed .nz (paper §4.1)", w)
		}
	}
}

func TestMicrosoftProfileMatchesPaper(t *testing.T) {
	for _, v := range []Vantage{VantageNL, VantageNZ} {
		for _, w := range Weeks {
			vw, _ := Get(v, w)
			ms := vw.Providers[astrie.ProviderMicrosoft]
			if ms.V6Share != 0 || ms.TCPShare != 0 {
				t.Errorf("%s/%s: Microsoft must be all-IPv4 all-UDP (Table 5)", v, w)
			}
			if ms.ValidateShare != 0 {
				t.Errorf("%s/%s: Microsoft must not validate (§4.2.2)", v, w)
			}
			if ms.QminShare != 0 {
				t.Errorf("%s/%s: Microsoft never deployed Q-min in the study", v, w)
			}
		}
	}
}

func TestFacebookPrefersV6Since2019(t *testing.T) {
	for _, v := range []Vantage{VantageNL, VantageNZ} {
		for _, w := range []Week{W2019, W2020} {
			vw, _ := Get(v, w)
			if vw.Providers[astrie.ProviderFacebook].V6Share <= 0.5 {
				t.Errorf("%s/%s: Facebook must prefer IPv6 (Table 5)", v, w)
			}
		}
		vw, _ := Get(v, W2018)
		if vw.Providers[astrie.ProviderFacebook].V6Share > 0.5 {
			t.Errorf("%s/2018: Facebook was not yet majority-IPv6", v)
		}
	}
}

func TestQminAdoptionTimeline(t *testing.T) {
	for _, v := range []Vantage{VantageNL, VantageNZ} {
		for _, w := range []Week{W2018, W2019} {
			vw, _ := Get(v, w)
			if vw.Providers[astrie.ProviderGoogle].QminShare != 0 {
				t.Errorf("%s/%s: Google Q-min predates Dec 2019", v, w)
			}
		}
		vw, _ := Get(v, W2020)
		if vw.Providers[astrie.ProviderGoogle].QminShare < 0.5 {
			t.Errorf("%s/w2020: Google Q-min share too low", v)
		}
		// Three of five CPs with high NS share at both ccTLDs in 2020.
		high := 0
		for _, p := range vw.Providers {
			if p.QminShare >= 0.5 {
				high++
			}
		}
		if high != 3 {
			t.Errorf("%s/w2020: %d providers with majority Q-min, want 3 (§4.2.1)", v, high)
		}
	}
	// Amazon grew Q-min at .nz specifically.
	nz2020, _ := Get(VantageNZ, W2020)
	nl2020, _ := Get(VantageNL, W2020)
	if nz2020.Providers[astrie.ProviderAmazon].QminShare <= nl2020.Providers[astrie.ProviderAmazon].QminShare {
		t.Error("Amazon's .nz Q-min share must exceed .nl (§4.2.1)")
	}
}

func TestFacebookEDNS512Heavy(t *testing.T) {
	vw, _ := Get(VantageNL, W2020)
	fb := vw.Providers[astrie.ProviderFacebook]
	if math.Abs(fb.EDNSSizes[512]-0.30) > 0.01 {
		t.Errorf("Facebook 512-byte EDNS fraction = %v, want 0.30 (Fig 6)", fb.EDNSSizes[512])
	}
	g := vw.Providers[astrie.ProviderGoogle]
	upTo1232 := g.EDNSSizes[0] + g.EDNSSizes[512] + g.EDNSSizes[1232]
	if math.Abs(upTo1232-PaperFigure6.GoogleAt1232) > 0.02 {
		t.Errorf("Google ≤1232 fraction = %v, want ≈%v", upTo1232, PaperFigure6.GoogleAt1232)
	}
}

func TestOtherJunkShareReconcilesTable3(t *testing.T) {
	for _, v := range Vantages {
		for _, w := range Weeks {
			vw, _ := Get(v, w)
			cloudShare, cloudJunk := 0.0, 0.0
			for _, p := range vw.Providers {
				cloudShare += p.Share
				cloudJunk += p.Share * p.JunkShare
			}
			got := cloudJunk + (1-cloudShare)*vw.OtherJunkShare
			want := 1 - vw.ValidShare
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s/%s: reconstructed junk %v vs Table 3 %v", v, w, got, want)
			}
			// CPs send proportionally less junk than the long tail at the
			// root (Figure 4), with the noted 2019 Cloudflare exception.
			if v == VantageBRoot {
				for prov, p := range vw.Providers {
					if prov == astrie.ProviderCloudflare && w == W2019 {
						continue
					}
					if p.JunkShare >= vw.OtherJunkShare {
						t.Errorf("B-Root/%s/%s junk %v ≥ other %v", w, prov, p.JunkShare, vw.OtherJunkShare)
					}
				}
			}
		}
	}
}

func TestWeekYear(t *testing.T) {
	if W2018.Year() != 2018 || W2019.Year() != 2019 || W2020.Year() != 2020 {
		t.Error("week years wrong")
	}
}

func TestPaperTablesShape(t *testing.T) {
	if len(PaperTable3) != 9 {
		t.Errorf("Table 3 rows = %d", len(PaperTable3))
	}
	if len(PaperTable4) != 4 {
		t.Errorf("Table 4+7 rows = %d", len(PaperTable4))
	}
	if len(PaperTable6) != 4 {
		t.Errorf("Table 6 rows = %d", len(PaperTable6))
	}
	for p, weeks := range PaperTable5 {
		for w, cells := range weeks {
			for v, c := range cells {
				if math.Abs(c.IPv4+c.IPv6-1) > 0.011 {
					t.Errorf("Table5 %s/%s/%s IP shares sum to %v", p, w, v, c.IPv4+c.IPv6)
				}
				if math.Abs(c.UDP+c.TCP-1) > 0.011 {
					t.Errorf("Table5 %s/%s/%s transport shares sum to %v", p, w, v, c.UDP+c.TCP)
				}
			}
		}
	}
}

func TestFigure3Series(t *testing.T) {
	if len(Figure3Months) != 18 {
		t.Fatalf("Figure 3 months = %d, want 18 (Nov 2018 .. Apr 2020)", len(Figure3Months))
	}
	if Figure3Months[0].String() != "2018-11" || Figure3Months[17].String() != "2020-04" {
		t.Errorf("month range: %s..%s", Figure3Months[0], Figure3Months[17])
	}
	// Q-min flips on in Dec 2019.
	qmin, _ := GoogleMonthlyProfile(VantageNL, Month{2019, time.November})
	if qmin {
		t.Error("Q-min on before Dec 2019")
	}
	qmin, _ = GoogleMonthlyProfile(VantageNL, Month{2019, time.December})
	if !qmin {
		t.Error("Q-min off in Dec 2019")
	}
	// The anomaly hits only .nz in Feb 2020.
	_, anom := GoogleMonthlyProfile(VantageNZ, Month{2020, time.February})
	if !anom {
		t.Error("missing .nz Feb 2020 anomaly")
	}
	_, anom = GoogleMonthlyProfile(VantageNL, Month{2020, time.February})
	if anom {
		t.Error(".nl must not have the anomaly")
	}
	_, anom = GoogleMonthlyProfile(VantageNZ, Month{2020, time.March})
	if anom {
		t.Error("anomaly must end after Feb 2020")
	}
}

func TestResolverCountsMatchPublishedTables(t *testing.T) {
	nl2020, _ := Get(VantageNL, W2020)
	if nl2020.Providers[astrie.ProviderAmazon].Resolvers != 38317 {
		t.Error("Amazon .nl w2020 resolver count drifted from Table 6")
	}
	if nl2020.Providers[astrie.ProviderMicrosoft].Resolvers != 14494 {
		t.Error("Microsoft .nl w2020 resolver count drifted from Table 6")
	}
	if nl2020.Providers[astrie.ProviderGoogle].Resolvers != 23943 {
		t.Error("Google .nl w2020 resolver count drifted from Table 4")
	}
	nz2020, _ := Get(VantageNZ, W2020)
	if nz2020.Providers[astrie.ProviderAmazon].Resolvers != 34645 ||
		nz2020.Providers[astrie.ProviderMicrosoft].Resolvers != 10206 ||
		nz2020.Providers[astrie.ProviderGoogle].Resolvers != 21230 {
		t.Error(".nz w2020 resolver counts drifted from Tables 4/6")
	}
}
