// Package stats provides the small statistical machinery the reproduction
// needs: empirical CDFs (Figure 6), medians (Figure 5's median TCP RTTs),
// a bounded Zipf sampler for domain-name popularity, weighted choice for
// per-provider traffic mix, and simple histograms.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Median returns the median of xs (mean of the two central elements for
// even lengths). It returns 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MedianDurations returns the median of ds.
func MedianDurations(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Median(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if p <= 0 {
		return tmp[0]
	}
	if p >= 100 {
		return tmp[len(tmp)-1]
	}
	rank := p / 100 * float64(len(tmp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return tmp[lo]
	}
	frac := rank - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // P(X <= Value)
}

// CDF computes the empirical CDF of xs as a step function with one point
// per distinct value. The final point always has Fraction 1.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	var out []CDFPoint
	n := float64(len(tmp))
	for i := 0; i < len(tmp); {
		j := i
		for j < len(tmp) && tmp[j] == tmp[i] {
			j++
		}
		out = append(out, CDFPoint{Value: tmp[i], Fraction: float64(j) / n})
		i = j
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at v.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	// Binary search for the last point with Value <= v.
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid].Value <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return cdf[lo-1].Fraction
}

// Zipf draws ranks in [0, n) with frequency proportional to 1/(rank+1)^s,
// matching the heavy-tailed popularity of queried domain names. It wraps
// math/rand.Zipf with a fixed, documented parameterization.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a sampler over n items with skew s > 1 would be required
// by rand.Zipf; we accept s > 0 by clamping to the library's s > 1
// constraint with the customary s=1.0001 near-harmonic setting.
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Next draws a rank in [0, n).
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// WeightedChoice selects indexes in proportion to non-negative weights.
type WeightedChoice struct {
	cum []float64
}

// NewWeightedChoice builds a sampler; at least one weight must be positive.
func NewWeightedChoice(weights []float64) (*WeightedChoice, error) {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: negative weight %v at %d", w, i)
		}
		sum += w
		cum[i] = sum
	}
	if sum == 0 {
		return nil, fmt.Errorf("stats: all weights zero")
	}
	return &WeightedChoice{cum: cum}, nil
}

// Pick draws an index using r.
func (w *WeightedChoice) Pick(r *rand.Rand) int {
	total := w.cum[len(w.cum)-1]
	x := r.Float64() * total
	return sort.SearchFloat64s(w.cum, x)
}

// Histogram counts observations in integer-keyed buckets (e.g. EDNS sizes).
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]uint64)} }

// Add records one observation of value v.
func (h *Histogram) Add(v int) { h.counts[v]++; h.total++ }

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n uint64) { h.counts[v] += n; h.total += n }

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the observations of value v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// Values returns the distinct observed values in ascending order.
func (h *Histogram) Values() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// CDF converts the histogram into an empirical CDF.
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for _, v := range h.Values() {
		cum += h.counts[v]
		out = append(out, CDFPoint{Value: float64(v), Fraction: float64(cum) / float64(h.total)})
	}
	return out
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.counts {
		h.counts[v] += c
	}
	h.total += other.total
}

// Ratio returns a/b, or 0 when b == 0; the analysis layer uses it to avoid
// NaNs in sparse cells.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
