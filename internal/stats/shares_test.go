package stats

import (
	"math"
	"testing"
)

func TestSharesSortedAndNormalized(t *testing.T) {
	s := Shares(map[string]uint64{"cloudA": 60, "cloudB": 30, "cloudC": 10})
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].Name != "cloudA" || s[1].Name != "cloudB" || s[2].Name != "cloudC" {
		t.Fatalf("order = %v", s)
	}
	var sum float64
	for _, x := range s {
		sum += x.Fraction
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if math.Abs(s[0].Fraction-0.6) > 1e-12 {
		t.Fatalf("top fraction = %v", s[0].Fraction)
	}
}

func TestSharesTieBreakByName(t *testing.T) {
	s := Shares(map[string]uint64{"b": 5, "a": 5, "c": 5})
	if s[0].Name != "a" || s[1].Name != "b" || s[2].Name != "c" {
		t.Fatalf("tie order = %v", s)
	}
}

func TestSharesEmptyAndZero(t *testing.T) {
	if s := Shares(nil); len(s) != 0 {
		t.Fatalf("nil map gave %v", s)
	}
	s := Shares(map[string]uint64{"a": 0, "b": 0})
	for _, x := range s {
		if x.Fraction != 0 {
			t.Fatalf("zero total produced fraction %v", x.Fraction)
		}
	}
}

func TestHHI(t *testing.T) {
	if h := HHI(nil); h != 0 {
		t.Fatalf("empty HHI = %v", h)
	}
	mono := Shares(map[string]uint64{"only": 100})
	if h := HHI(mono); math.Abs(h-1) > 1e-12 {
		t.Fatalf("monopoly HHI = %v, want 1", h)
	}
	equal4 := Shares(map[string]uint64{"a": 1, "b": 1, "c": 1, "d": 1})
	if h := HHI(equal4); math.Abs(h-0.25) > 1e-12 {
		t.Fatalf("4-equal HHI = %v, want 0.25", h)
	}
	skewed := Shares(map[string]uint64{"big": 90, "small": 10})
	if h := HHI(skewed); h <= 0.5 || h >= 1 {
		t.Fatalf("skewed HHI = %v, want in (0.5, 1)", h)
	}
}

func TestTopShare(t *testing.T) {
	s := Shares(map[string]uint64{"a": 50, "b": 30, "c": 20})
	if got := TopShare(s, 2); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("top-2 = %v, want 0.8", got)
	}
	if got := TopShare(s, 10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("top-10 = %v, want 1", got)
	}
	if got := TopShare(nil, 3); got != 0 {
		t.Fatalf("empty top = %v", got)
	}
}
