package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestReservoirMedianWithinTolerance(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 10, 101, 5000} {
		var r DurationReservoir
		samples := make([]time.Duration, n)
		for i := range samples {
			// Log-uniform over 100µs..2s, the realistic RTT range.
			d := time.Duration(float64(100*time.Microsecond) *
				math.Pow(2e4, rnd.Float64()))
			samples[i] = d
			r.Observe(d)
		}
		exact := MedianDurations(samples)
		got := r.Median()
		relerr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		// Gamma 1.01 bounds per-sample error by ~0.5%; the even-count
		// midpoint can combine two buckets, so allow 1%.
		if relerr > 0.01 {
			t.Errorf("n=%d: median %v vs exact %v (relerr %.4f)", n, got, exact, relerr)
		}
		if r.Count() != uint64(n) {
			t.Errorf("n=%d: Count = %d", n, r.Count())
		}
	}
}

func TestReservoirEmptyAndNil(t *testing.T) {
	var nilRes *DurationReservoir
	if nilRes.Count() != 0 || nilRes.Median() != 0 {
		t.Error("nil reservoir should be empty")
	}
	var empty DurationReservoir
	if empty.Median() != 0 {
		t.Error("empty reservoir median should be 0")
	}
}

func TestReservoirClamping(t *testing.T) {
	var r DurationReservoir
	r.Observe(0)                // below min → clamped to 1µs bucket
	r.Observe(-time.Second)     // negative → clamped
	r.Observe(10 * time.Minute) // above max → clamped to 60s bucket
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	if m := r.Median(); m > 2*reservoirMax || m < 0 {
		t.Fatalf("median of clamped extremes out of range: %v", m)
	}
}

// TestReservoirMergeOrderInsensitive is the property the entrada shard
// merge requires: any split of the sample stream, merged in any order,
// yields a reservoir with identical state (hence identical medians).
func TestReservoirMergeOrderInsensitive(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 2000)
	for i := range samples {
		samples[i] = time.Duration(rnd.Int63n(int64(time.Second)))
	}
	var whole DurationReservoir
	for _, d := range samples {
		whole.Observe(d)
	}
	for _, k := range []int{2, 3, 5} {
		shards := make([]*DurationReservoir, k)
		for i := range shards {
			shards[i] = &DurationReservoir{}
		}
		for i, d := range samples {
			shards[i%k].Observe(d)
		}
		for trial := 0; trial < 4; trial++ {
			perm := rnd.Perm(k)
			var merged DurationReservoir
			for _, i := range perm {
				merged.Merge(shards[i])
			}
			if merged.Count() != whole.Count() {
				t.Fatalf("k=%d perm=%v: count %d != %d", k, perm, merged.Count(), whole.Count())
			}
			if merged.Median() != whole.Median() {
				t.Fatalf("k=%d perm=%v: median %v != %v", k, perm, merged.Median(), whole.Median())
			}
			if len(merged.counts) != len(whole.counts) {
				t.Fatalf("k=%d: bucket sets differ", k)
			}
			for b, c := range whole.counts {
				if merged.counts[b] != c {
					t.Fatalf("k=%d bucket %d: %d != %d", k, b, merged.counts[b], c)
				}
			}
		}
	}
}

func TestReservoirMergeNilAndEmpty(t *testing.T) {
	var r DurationReservoir
	r.Observe(time.Millisecond)
	before := r.Median()
	r.Merge(nil)
	r.Merge(&DurationReservoir{})
	if r.Median() != before || r.Count() != 1 {
		t.Error("merging nil/empty changed state")
	}
}

func TestReservoirClone(t *testing.T) {
	var r DurationReservoir
	r.Observe(5 * time.Millisecond)
	c := r.Clone()
	c.Observe(100 * time.Millisecond)
	if r.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: %d/%d", r.Count(), c.Count())
	}
}

func TestReservoirBoundedMemory(t *testing.T) {
	var r DurationReservoir
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		r.Observe(time.Duration(rnd.Int63n(int64(2 * time.Minute))))
	}
	// ln(60s/1µs)/ln(1.01) ≈ 1795 buckets possible; anything near that is
	// fine, unbounded growth is not.
	if len(r.counts) > 1800 {
		t.Fatalf("reservoir grew to %d buckets", len(r.counts))
	}
}
