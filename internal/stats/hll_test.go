package stats

import (
	"fmt"
	"math"
	"testing"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		h := NewHLL(12)
		for i := 0; i < n; i++ {
			h.AddString(fmt.Sprintf("resolver-%d", i))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.06 {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f", n, est, relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(12)
	for i := 0; i < 100000; i++ {
		h.AddString(fmt.Sprintf("resolver-%d", i%500))
	}
	est := h.Estimate()
	if est < 400 || est > 600 {
		t.Errorf("estimate %.0f, want ≈500", est)
	}
}

func TestHLLEmpty(t *testing.T) {
	h := NewHLL(12)
	if est := h.Estimate(); est != 0 {
		t.Errorf("empty estimate = %v", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(12), NewHLL(12)
	for i := 0; i < 1000; i++ {
		a.AddString(fmt.Sprintf("a-%d", i))
		b.AddString(fmt.Sprintf("b-%d", i))
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-2000)/2000 > 0.08 {
		t.Errorf("merged estimate %.0f, want ≈2000", est)
	}
	// Mismatched precision merge is a no-op, not a panic.
	c := NewHLL(8)
	a.Merge(c)
	a.Merge(nil)
}

func TestHLLPrecisionClamped(t *testing.T) {
	if got := len(NewHLL(2).registers); got != 16 {
		t.Errorf("p clamp low: %d registers", got)
	}
	if got := len(NewHLL(20).registers); got != 1<<16 {
		t.Errorf("p clamp high: %d registers", got)
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := NewHLL(12)
	buf := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		h.Add(buf)
	}
}
