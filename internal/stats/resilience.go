package stats

import (
	"fmt"
	"strings"
)

// Resilience aggregates the outage-survival accounting of a recursor
// run: how much of the stub workload still got an answer while the
// upstream path was browned out or a flood hammered the front door.
// The paper's centralization concern has a flip side this quantifies —
// when few providers carry most zones, one provider outage is a mass
// outage, and the cache tier's serve-stale window is what stands
// between users and the dark. Like Robustness, the struct holds only
// counts, so two runs with the same seeds format to identical bytes.
type Resilience struct {
	// StubQueries is the stub workload presented to the recursor;
	// Servfails is how many of them surfaced a failure; FloodRefused is
	// how many the water-torture guard turned away with REFUSED.
	StubQueries  uint64
	Servfails    uint64
	FloodRefused uint64
	// FreshHits counts answers served from live cache entries;
	// StaleServed counts RFC 8767 answers served past expiry with
	// clamped TTLs; StaleRefreshes counts the background fills the
	// stale path launched.
	FreshHits      uint64
	StaleServed    uint64
	StaleRefreshes uint64
	// FailCacheHits counts misses absorbed by the negative failure
	// cache without an upstream attempt; BreakerFastFails counts fills
	// rejected because every upstream breaker was open; BreakerOpens
	// totals breaker trips across the pool.
	FailCacheHits    uint64
	BreakerFastFails uint64
	BreakerOpens     uint64
	// RRLDrops/RRLSlips count datagrams the per-client rate limiter
	// silently dropped or answered with a minimal TC=1 slip.
	RRLDrops uint64
	RRLSlips uint64
	// UpstreamQueries is what actually crossed the wire upstream;
	// UpstreamFailures is how many of those exchanges errored.
	UpstreamQueries  uint64
	UpstreamFailures uint64
}

// Merge adds other's counters into r.
func (r *Resilience) Merge(other Resilience) {
	r.StubQueries += other.StubQueries
	r.Servfails += other.Servfails
	r.FloodRefused += other.FloodRefused
	r.FreshHits += other.FreshHits
	r.StaleServed += other.StaleServed
	r.StaleRefreshes += other.StaleRefreshes
	r.FailCacheHits += other.FailCacheHits
	r.BreakerFastFails += other.BreakerFastFails
	r.BreakerOpens += other.BreakerOpens
	r.RRLDrops += other.RRLDrops
	r.RRLSlips += other.RRLSlips
	r.UpstreamQueries += other.UpstreamQueries
	r.UpstreamFailures += other.UpstreamFailures
}

// Answered is how many stub queries got a usable answer: everything
// that neither surfaced SERVFAIL nor was refused by the flood guard
// (RRL drops never reached the recursor and are not part of
// StubQueries).
func (r Resilience) Answered() uint64 {
	return r.StubQueries - r.Servfails - r.FloodRefused
}

// Availability is the fraction of stub queries answered — the
// during-brownout availability the serve-stale window buys.
func (r Resilience) Availability() float64 {
	return Ratio(r.Answered(), r.StubQueries)
}

// StaleShare is the fraction of answered queries served stale.
func (r Resilience) StaleShare() float64 {
	return Ratio(r.StaleServed, r.Answered())
}

// Amplification is upstream wire queries per stub query — the load a
// flood or outage actually translated into at the authoritative side.
// Breakers and the failure cache exist to hold this down.
func (r Resilience) Amplification() float64 {
	return Ratio(r.UpstreamQueries, r.StubQueries)
}

// Format renders the report as a fixed-layout text block, byte-stable
// across runs with the same seeds.
func (r Resilience) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience report:\n")
	fmt.Fprintf(&b, "  stub queries       %8d (%d answered, %d servfail, %d flood-refused)\n",
		r.StubQueries, r.Answered(), r.Servfails, r.FloodRefused)
	fmt.Fprintf(&b, "  fresh hits         %8d\n", r.FreshHits)
	fmt.Fprintf(&b, "  stale served       %8d (%d background refreshes)\n", r.StaleServed, r.StaleRefreshes)
	fmt.Fprintf(&b, "  fail-cache hits    %8d\n", r.FailCacheHits)
	fmt.Fprintf(&b, "  breaker            %8d opens, %d fast-fails\n", r.BreakerOpens, r.BreakerFastFails)
	fmt.Fprintf(&b, "  rrl                %8d drops, %d slips\n", r.RRLDrops, r.RRLSlips)
	fmt.Fprintf(&b, "  upstream queries   %8d (%d failed)\n", r.UpstreamQueries, r.UpstreamFailures)
	fmt.Fprintf(&b, "  availability       %10.4f\n", r.Availability())
	fmt.Fprintf(&b, "  stale share        %10.4f of answered\n", r.StaleShare())
	fmt.Fprintf(&b, "  amplification      %10.4f upstream queries per stub query\n", r.Amplification())
	return b.String()
}
