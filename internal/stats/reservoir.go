package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// DurationReservoir is a fixed-memory, deterministic sketch of a duration
// sample set, built for the entrada analyzer's per-key RTT tracking where
// an unbounded []time.Duration per key would grow with traffic volume.
//
// It is a log-bucketed histogram (DDSketch-style): durations are clamped
// to [reservoirMin, reservoirMax] and counted in geometrically-spaced
// buckets with ratio reservoirGamma, giving a bounded relative error of
// (gamma-1)/2 ≈ 0.5% on any quantile. The state is a pure function of the
// sample multiset — no randomness, no insertion-order dependence — so
// Merge is commutative and associative and the analyzer's byte-identical
// shard-merge invariant holds by construction.
type DurationReservoir struct {
	counts map[int32]uint64
	total  uint64
}

const (
	// reservoirGamma is the bucket boundary ratio: ~0.5% relative error.
	reservoirGamma = 1.01
	// reservoirMin and reservoirMax clamp the tracked range; with gamma
	// 1.01 this spans ln(60s/1µs)/ln(1.01) ≈ 1795 buckets at most, so a
	// fully-populated reservoir stays under ~30 KiB.
	reservoirMin = time.Microsecond
	reservoirMax = time.Minute
)

// reservoirBucket maps d to its bucket index. Indices are derived from
// integer-exact clamping plus a float log whose result is floored; the
// same input always lands in the same bucket on every platform Go
// supports (math.Log is correctly rounded per spec on all first-class
// ports), keeping shard merges deterministic.
func reservoirBucket(d time.Duration) int32 {
	if d < reservoirMin {
		d = reservoirMin
	}
	if d > reservoirMax {
		d = reservoirMax
	}
	ratio := float64(d) / float64(reservoirMin)
	return int32(math.Floor(math.Log(ratio) / math.Log(reservoirGamma)))
}

// reservoirValue returns the representative duration for bucket i: the
// geometric midpoint of the bucket's bounds, which bounds the relative
// reconstruction error by (gamma-1)/2.
func reservoirValue(i int32) time.Duration {
	lo := float64(reservoirMin) * math.Pow(reservoirGamma, float64(i))
	return time.Duration(lo * math.Sqrt(reservoirGamma))
}

// DurationBucket maps d to its log-bucket index — the same bucketing the
// reservoir itself uses, exported so other fixed-memory duration sketches
// (internal/telemetry histograms) share one bucket geometry and their
// quantiles stay comparable with reservoir medians.
func DurationBucket(d time.Duration) int32 { return reservoirBucket(d) }

// DurationBucketValue returns the representative duration of bucket i.
func DurationBucketValue(i int32) time.Duration { return reservoirValue(i) }

// DurationBucketUpper returns the exclusive upper bound of bucket i,
// usable as a Prometheus histogram `le` boundary.
func DurationBucketUpper(i int32) time.Duration {
	return time.Duration(float64(reservoirMin) * math.Pow(reservoirGamma, float64(i+1)))
}

// NumDurationBuckets is the size of the bucket index space: every
// DurationBucket result is in [0, NumDurationBuckets).
func NumDurationBuckets() int { return int(reservoirBucket(reservoirMax)) + 1 }

// Observe adds one sample.
func (r *DurationReservoir) Observe(d time.Duration) {
	if r.counts == nil {
		r.counts = make(map[int32]uint64, 8)
	}
	r.counts[reservoirBucket(d)]++
	r.total++
}

// Count returns the number of samples observed. A nil reservoir is empty.
func (r *DurationReservoir) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Merge folds other into r. Because both sides are pure functions of
// their sample multisets, merge order can never change the result.
func (r *DurationReservoir) Merge(other *DurationReservoir) {
	if other == nil || other.total == 0 {
		return
	}
	if r.counts == nil {
		r.counts = make(map[int32]uint64, len(other.counts))
	}
	for i, c := range other.counts {
		r.counts[i] += c
	}
	r.total += other.total
}

// EachBucket calls fn for every occupied bucket in ascending index
// order — the deterministic export side of a persisted sketch.
func (r *DurationReservoir) EachBucket(fn func(i int32, n uint64)) {
	if r == nil || r.total == 0 {
		return
	}
	for _, i := range r.sortedBuckets() {
		fn(i, r.counts[i])
	}
}

// ObserveBucketN adds n samples directly to bucket i: the inverse of
// EachBucket, for restoring a serialized sketch. Restoring every
// exported (i, n) pair reconstructs the exact state.
func (r *DurationReservoir) ObserveBucketN(i int32, n uint64) {
	if n == 0 {
		return
	}
	if r.counts == nil {
		r.counts = make(map[int32]uint64, 8)
	}
	r.counts[i] += n
	r.total += n
}

// Clone returns an independent copy of r.
func (r *DurationReservoir) Clone() *DurationReservoir {
	if r == nil || r.total == 0 {
		return &DurationReservoir{}
	}
	c := &DurationReservoir{counts: make(map[int32]uint64, len(r.counts)), total: r.total}
	for i, n := range r.counts {
		c.counts[i] = n
	}
	return c
}

// Median returns the sketched median, mirroring MedianDurations semantics
// on the bucket representatives: the middle sample for odd counts, the
// mean of the two middle samples for even counts. Zero if empty.
func (r *DurationReservoir) Median() time.Duration {
	if r == nil || r.total == 0 {
		return 0
	}
	idxs := r.sortedBuckets()
	if r.total%2 == 1 {
		return reservoirValue(r.nthSample(idxs, r.total/2))
	}
	lo := reservoirValue(r.nthSample(idxs, r.total/2-1))
	hi := reservoirValue(r.nthSample(idxs, r.total/2))
	return (lo + hi) / 2
}

func (r *DurationReservoir) sortedBuckets() []int32 {
	idxs := make([]int32, 0, len(r.counts))
	for i := range r.counts {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	return idxs
}

// nthSample returns the bucket holding the n-th (0-based) sample in
// ascending order.
func (r *DurationReservoir) nthSample(sorted []int32, n uint64) int32 {
	var seen uint64
	for _, i := range sorted {
		seen += r.counts[i]
		if n < seen {
			return i
		}
	}
	return sorted[len(sorted)-1]
}

// String renders a compact deterministic summary, usable in reports.
func (r *DurationReservoir) String() string {
	if r.Count() == 0 {
		return "reservoir(empty)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "reservoir(n=%d median=%s)", r.total, r.Median())
	return sb.String()
}
