package stats

import (
	"strings"
	"testing"
)

func TestRobustnessMerge(t *testing.T) {
	a := Robustness{Lookups: 10, WireQueries: 12, LogicalExchanges: 10, Retries: 2, TCPQueries: 1}
	b := Robustness{Lookups: 5, Failures: 1, WireQueries: 9, LogicalExchanges: 5,
		AttemptErrors: 4, ServfailRetries: 1, FailedExchanges: 1, TCPFallbacks: 1,
		CacheHits: 2, FaultsInjected: 6}
	a.Merge(b)
	want := Robustness{Lookups: 15, Failures: 1, LogicalExchanges: 15, WireQueries: 21,
		Retries: 2, AttemptErrors: 4, ServfailRetries: 1, FailedExchanges: 1,
		TCPQueries: 1, TCPFallbacks: 1, CacheHits: 2, FaultsInjected: 6}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
}

func TestRobustnessRatios(t *testing.T) {
	r := Robustness{
		Lookups: 100, Failures: 5,
		LogicalExchanges: 200, WireQueries: 260, TCPQueries: 13,
	}
	if got := r.Amplification(); got != 1.3 {
		t.Errorf("Amplification = %v", got)
	}
	if got := r.FailureRate(); got != 0.05 {
		t.Errorf("FailureRate = %v", got)
	}
	if got := r.TCPFallbackRate(); got != 0.05 {
		t.Errorf("TCPFallbackRate = %v", got)
	}
	if got := r.QueriesPerLookup(); got != 2.6 {
		t.Errorf("QueriesPerLookup = %v", got)
	}
	// Empty report: every ratio is 0, not NaN.
	var zero Robustness
	for name, got := range map[string]float64{
		"Amplification":    zero.Amplification(),
		"FailureRate":      zero.FailureRate(),
		"TCPFallbackRate":  zero.TCPFallbackRate(),
		"QueriesPerLookup": zero.QueriesPerLookup(),
	} {
		if got != 0 {
			t.Errorf("zero-report %s = %v, want 0", name, got)
		}
	}
}

func TestRobustnessFormat(t *testing.T) {
	r := Robustness{
		Lookups: 100, Failures: 2, CacheHits: 30,
		LogicalExchanges: 180, WireQueries: 220,
		Retries: 40, AttemptErrors: 38, ServfailRetries: 2, FailedExchanges: 2,
		TCPQueries: 11, TCPFallbacks: 9, FaultsInjected: 44,
	}
	out := r.Format()
	if out != r.Format() {
		t.Fatal("Format is not stable across calls")
	}
	if !strings.HasPrefix(out, "robustness report:\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{
		"lookups                 100 (2 failed, 30 cache hits)",
		"wire queries            220 (40 retries, 38 attempt errors, 2 servfail retries)",
		"faults injected          44",
		"amplification          1.2222 wire queries per logical exchange",
		"queries/lookup         2.2000",
		"failure rate           0.0200",
		"tcp fallback rate      0.0500 (11 TCP queries, 9 TC fallbacks)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
