package stats

import "sort"

// Share is one name's slice of a traffic distribution.
type Share struct {
	Name     string
	Count    uint64
	Fraction float64
}

// Shares converts per-name counts into a share distribution sorted by
// descending count (ties broken by name for determinism). A zero total
// yields zero fractions.
func Shares(counts map[string]uint64) []Share {
	var total uint64
	for _, c := range counts {
		total += c
	}
	out := make([]Share, 0, len(counts))
	for name, c := range counts {
		s := Share{Name: name, Count: c}
		if total > 0 {
			s.Fraction = float64(c) / float64(total)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// HHI computes the Herfindahl–Hirschman index of a share distribution —
// the canonical concentration measure for the paper's centralization
// question: 1/n for n equal providers, 1.0 for a monopoly, 0 for an
// empty distribution.
func HHI(shares []Share) float64 {
	var h float64
	for _, s := range shares {
		h += s.Fraction * s.Fraction
	}
	return h
}

// TopShare returns the combined fraction of the k largest shares
// (the paper's "top-k providers serve X% of traffic" statistic).
func TopShare(shares []Share, k int) float64 {
	var sum float64
	for i, s := range shares {
		if i >= k {
			break
		}
		sum += s.Fraction
	}
	return sum
}
