package stats

import (
	"hash/fnv"
	"math"
)

// HLL is a HyperLogLog cardinality estimator. ENTRADA-scale deployments
// cannot keep exact per-day resolver sets for billions of queries; the
// ablation benchmarks compare this estimator against exact set counting
// (the reproduction's default, which is exact because traces are scaled).
type HLL struct {
	p         uint8
	registers []uint8
}

// NewHLL creates an estimator with 2^p registers (4 ≤ p ≤ 16). p=12 gives
// a typical standard error of ~1.6%.
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HLL{p: p, registers: make([]uint8, 1<<p)}
}

// Add observes one item.
func (h *HLL) Add(item []byte) {
	hash := fnv.New64a()
	_, _ = hash.Write(item)
	x := hash.Sum64()
	// FNV's high bits mix poorly for short keys; finalize with splitmix64
	// so both the register index and the rank bits are uniform.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure a terminating bit
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// AddString observes a string item.
func (h *HLL) AddString(s string) { h.Add([]byte(s)) }

// Estimate returns the cardinality estimate.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Small-range correction: linear counting.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into h (register-wise max); both must share p.
func (h *HLL) Merge(other *HLL) {
	if other == nil || other.p != h.p {
		return
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
}
