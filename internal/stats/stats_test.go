package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMedianDurations(t *testing.T) {
	ds := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	if got := MedianDurations(ds); got != 20*time.Millisecond {
		t.Errorf("MedianDurations = %v", got)
	}
	if MedianDurations(nil) != 0 {
		t.Error("empty median != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestCDFStepsAndMonotonicity(t *testing.T) {
	xs := []float64{512, 512, 1232, 4096}
	cdf := CDF(xs)
	if len(cdf) != 3 {
		t.Fatalf("cdf = %v", cdf)
	}
	if cdf[0].Value != 512 || cdf[0].Fraction != 0.5 {
		t.Errorf("first point = %+v", cdf[0])
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Errorf("last fraction = %v", cdf[len(cdf)-1].Fraction)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value <= cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Errorf("not monotone at %d: %+v", i, cdf)
		}
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{512, 1232, 4096, 4096})
	cases := []struct {
		v    float64
		want float64
	}{
		{100, 0},
		{512, 0.25},
		{1000, 0.25},
		{1232, 0.5},
		{4096, 1},
		{9000, 1},
	}
	for _, c := range cases {
		if got := CDFAt(cdf, c.v); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CDFAt(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if CDFAt(nil, 5) != 0 {
		t.Error("empty CDF should evaluate to 0")
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		cdf := CDF(xs)
		last := -math.MaxFloat64
		lastF := 0.0
		for _, p := range cdf {
			if p.Value <= last || p.Fraction < lastF {
				return false
			}
			last, lastF = p.Value, p.Fraction
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	z := NewZipf(r, 1.1, 10000)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate and the top 100 ranks must hold most mass.
	if counts[0] < counts[1] {
		t.Errorf("rank0=%d < rank1=%d", counts[0], counts[1])
	}
	top := 0
	for rk := uint64(0); rk < 100; rk++ {
		top += counts[rk]
	}
	if float64(top)/draws < 0.5 {
		t.Errorf("top-100 mass = %v, want > 0.5", float64(top)/draws)
	}
}

func TestZipfClampsSkew(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	z := NewZipf(r, 0.5, 100) // would panic in rand.NewZipf without clamping
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v >= 100 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	w, err := NewWeightedChoice([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	counts := [3]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.Pick(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	got := float64(counts[2]) / draws
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("index 2 frequency = %v, want ~0.75", got)
	}
}

func TestWeightedChoiceErrors(t *testing.T) {
	if _, err := NewWeightedChoice([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewWeightedChoice([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeightedChoice([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(512)
	h.Add(512)
	h.AddN(1232, 2)
	if h.Total() != 4 || h.Count(512) != 2 || h.Count(1232) != 2 || h.Count(999) != 0 {
		t.Errorf("histogram state wrong: total=%d", h.Total())
	}
	vals := h.Values()
	if len(vals) != 2 || vals[0] != 512 || vals[1] != 1232 {
		t.Errorf("values = %v", vals)
	}
	cdf := h.CDF()
	if len(cdf) != 2 || cdf[0].Fraction != 0.5 || cdf[1].Fraction != 1 {
		t.Errorf("cdf = %v", cdf)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(1)
	b.Add(1)
	b.Add(2)
	a.Merge(b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(2) != 1 {
		t.Error("merge wrong")
	}
}

func TestHistogramEmptyCDF(t *testing.T) {
	if NewHistogram().CDF() != nil {
		t.Error("empty histogram CDF should be nil")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("divide by zero not guarded")
	}
	if Ratio(1, 4) != 0.25 {
		t.Error("ratio wrong")
	}
}
