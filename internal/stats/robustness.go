package stats

import (
	"fmt"
	"strings"
)

// Robustness aggregates the retry-amplification accounting of a run
// under network impairment. The paper's §5 observes that a slice of
// the traffic reaching authoritative servers is junk — retransmissions
// and broken-resolver retries — so the load the server measures grows
// as paths degrade even when the logical workload is constant. This
// report quantifies exactly that: wire queries per logical exchange
// (amplification), failure rate, and TCP-fallback rate.
//
// The struct is filled by the caller from resolver counters plus its
// own lookup bookkeeping; it deliberately contains only counts (no
// timings), so two runs with the same fault seed format to identical
// bytes.
type Robustness struct {
	// Lookups is the number of logical resolutions attempted; Failures
	// is how many returned an error after all retries.
	Lookups  uint64
	Failures uint64
	// LogicalExchanges is the number of name/type exchanges the
	// resolver needed; WireQueries is what actually crossed the wire
	// for them (retries and TCP fallbacks included).
	LogicalExchanges uint64
	WireQueries      uint64
	// Retries counts wire attempts beyond each exchange's first;
	// AttemptErrors counts attempts lost to timeout/corruption/refusal;
	// ServfailRetries counts attempts retried on a SERVFAIL answer;
	// FailedExchanges counts exchanges that exhausted their budget.
	Retries         uint64
	AttemptErrors   uint64
	ServfailRetries uint64
	FailedExchanges uint64
	// TCPQueries counts wire queries sent over TCP; TCPFallbacks counts
	// truncation-driven UDP→TCP switches.
	TCPQueries   uint64
	TCPFallbacks uint64
	// CacheHits counts lookups served without touching the wire.
	CacheHits uint64
	// FaultsInjected totals the impairment events the fault layer
	// actually fired (0 on a clean network).
	FaultsInjected uint64
}

// Merge adds other's counters into r.
func (r *Robustness) Merge(other Robustness) {
	r.Lookups += other.Lookups
	r.Failures += other.Failures
	r.LogicalExchanges += other.LogicalExchanges
	r.WireQueries += other.WireQueries
	r.Retries += other.Retries
	r.AttemptErrors += other.AttemptErrors
	r.ServfailRetries += other.ServfailRetries
	r.FailedExchanges += other.FailedExchanges
	r.TCPQueries += other.TCPQueries
	r.TCPFallbacks += other.TCPFallbacks
	r.CacheHits += other.CacheHits
	r.FaultsInjected += other.FaultsInjected
}

// Amplification is the retry-amplification factor: wire queries per
// logical exchange. A perfect network holds it at exactly 1.0 (TCP
// fallback aside); loss pushes it toward 1 + retry budget.
func (r Robustness) Amplification() float64 {
	return Ratio(r.WireQueries, r.LogicalExchanges)
}

// FailureRate is the fraction of lookups that failed outright.
func (r Robustness) FailureRate() float64 {
	return Ratio(r.Failures, r.Lookups)
}

// TCPFallbackRate is the fraction of wire queries carried over TCP.
func (r Robustness) TCPFallbackRate() float64 {
	return Ratio(r.TCPQueries, r.WireQueries)
}

// QueriesPerLookup is the authoritative-side load per logical lookup —
// the quantity the paper's per-provider counts measure.
func (r Robustness) QueriesPerLookup() float64 {
	return Ratio(r.WireQueries, r.Lookups)
}

// Format renders the report as a fixed-layout text block. Only counters
// and ratios derived from them appear, so the output is byte-identical
// across runs with the same fault seed.
func (r Robustness) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "robustness report:\n")
	fmt.Fprintf(&b, "  lookups            %8d (%d failed, %d cache hits)\n", r.Lookups, r.Failures, r.CacheHits)
	fmt.Fprintf(&b, "  logical exchanges  %8d\n", r.LogicalExchanges)
	fmt.Fprintf(&b, "  wire queries       %8d (%d retries, %d attempt errors, %d servfail retries)\n",
		r.WireQueries, r.Retries, r.AttemptErrors, r.ServfailRetries)
	fmt.Fprintf(&b, "  failed exchanges   %8d\n", r.FailedExchanges)
	fmt.Fprintf(&b, "  faults injected    %8d\n", r.FaultsInjected)
	fmt.Fprintf(&b, "  amplification      %10.4f wire queries per logical exchange\n", r.Amplification())
	fmt.Fprintf(&b, "  queries/lookup     %10.4f\n", r.QueriesPerLookup())
	fmt.Fprintf(&b, "  failure rate       %10.4f\n", r.FailureRate())
	fmt.Fprintf(&b, "  tcp fallback rate  %10.4f (%d TCP queries, %d TC fallbacks)\n",
		r.TCPFallbackRate(), r.TCPQueries, r.TCPFallbacks)
	return b.String()
}
