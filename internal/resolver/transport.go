package resolver

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

// ContextTransport is a Transport whose exchanges can be cancelled
// mid-flight. The recursor's hedged queries need this: when the first
// upstream answers, the racing exchange against the second is torn down
// immediately instead of running out its timeout. A timeout of 0 falls
// back to the transport's own default.
type ContextTransport interface {
	Transport
	ExchangeContext(ctx context.Context, q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error)
}

// ExchangeContext performs one exchange honoring both the timeout and
// the context, using native cancellation when t implements
// ContextTransport. Other transports run the exchange in a goroutine
// and abandon its result on cancellation: the caller unblocks at once,
// while the orphaned attempt self-terminates at its own deadline.
func ExchangeContext(ctx context.Context, t Transport, q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	if ct, ok := t.(ContextTransport); ok {
		return ct.ExchangeContext(ctx, q, tcp, timeout)
	}
	type outcome struct {
		resp *dnswire.Message
		rtt  time.Duration
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		if dt, ok := t.(DeadlineTransport); ok && timeout > 0 {
			o.resp, o.rtt, o.err = dt.ExchangeDeadline(q, tcp, timeout)
		} else {
			o.resp, o.rtt, o.err = t.Exchange(q, tcp)
		}
		ch <- o
	}()
	select {
	case o := <-ch:
		return o.resp, o.rtt, o.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// EngineTransport exchanges messages with an in-process authoritative
// Engine, faithfully passing through the wire format (pack, truncate,
// unpack) so EDNS-driven truncation behaves exactly as on a socket.
// SimulatedRTT is reported as the exchange duration (TCP exchanges report
// twice the value: handshake plus query round), giving deterministic
// latency signals for the family-preference policy without sleeping.
type EngineTransport struct {
	Engine       *authserver.Engine
	Client       netip.Addr
	SimulatedRTT time.Duration
}

// Exchange implements Transport.
func (t *EngineTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	// Round-trip the query through the wire format too, so malformed
	// constructions are caught in tests.
	wire, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	parsed, err := dnswire.Unpack(wire)
	if err != nil {
		return nil, 0, err
	}
	r := t.Engine.Handle(parsed, t.Client, tcp)
	if r == nil {
		return nil, 0, fmt.Errorf("engine transport: query dropped (RRL)")
	}
	out, err := authserver.PackResponse(r, parsed, tcp)
	if err != nil {
		return nil, 0, err
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		return nil, 0, err
	}
	rtt := t.SimulatedRTT
	if rtt == 0 {
		rtt = time.Millisecond
	}
	if tcp {
		rtt *= 2
	}
	return resp, rtt, nil
}

// NetTransport exchanges messages with a real authoritative server over
// UDP and TCP sockets. The reported duration is the socket-level exchange
// time (for TCP: connect + query, matching how the paper estimates RTTs
// from TCP handshakes).
//
// The UDP receive path is hardened against imperfect networks: stray
// datagrams — wrong source address, mismatched message ID, short or
// unparseable payloads (late duplicates, reordered leftovers, spoofing
// attempts) — are discarded and the read continues until the deadline,
// instead of failing the whole exchange on the first oddity.
type NetTransport struct {
	// Server is the authoritative server address (UDP and TCP same port).
	Server netip.AddrPort
	// Timeout bounds each exchange (default 5s).
	Timeout time.Duration

	strays atomic.Uint64
}

// StrayDatagrams counts UDP datagrams discarded by the hardened read
// loop (wrong source, mismatched ID, unparseable payload).
func (t *NetTransport) StrayDatagrams() uint64 { return t.strays.Load() }

// Exchange implements Transport.
func (t *NetTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	return t.ExchangeDeadline(q, tcp, 0)
}

// ExchangeDeadline implements DeadlineTransport; a timeout of 0 falls
// back to the transport-level Timeout (default 5s).
func (t *NetTransport) ExchangeDeadline(q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	return t.ExchangeContext(context.Background(), q, tcp, timeout)
}

// ExchangeContext implements ContextTransport with real socket-level
// cancellation: when ctx is cancelled mid-exchange the in-flight socket
// deadline is yanked to the past, so blocked reads and dials return
// immediately and the context error is surfaced.
func (t *NetTransport) ExchangeContext(ctx context.Context, q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	if timeout <= 0 {
		timeout = t.Timeout
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if !tcp {
		resp, err := t.exchangeUDP(ctx, wire, q.Header.ID, timeout)
		return resp, time.Since(start), ctxErr(ctx, err)
	}
	raw, err := t.exchangeTCP(ctx, wire, timeout)
	elapsed := time.Since(start)
	if err != nil {
		return nil, elapsed, ctxErr(ctx, err)
	}
	resp, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, elapsed, err
	}
	if resp.Header.ID != q.Header.ID {
		return nil, elapsed, fmt.Errorf("net transport: response ID %d != query ID %d", resp.Header.ID, q.Header.ID)
	}
	return resp, elapsed, nil
}

// ctxErr prefers the context's cancellation cause over the I/O error it
// provoked (a poked deadline surfaces as a timeout otherwise).
func ctxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// exchangeUDP sends the query from an unconnected socket and reads
// until a datagram from the server with the matching ID parses cleanly,
// or the deadline passes. The unconnected socket is what makes source
// verification real (a connected socket would have the kernel filter
// silently, and could never observe — or count — spoofed traffic).
func (t *NetTransport) exchangeUDP(ctx context.Context, wire []byte, id uint16, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if _, err := conn.WriteToUDPAddrPort(wire, t.Server); err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	var discarded int
	for {
		n, src, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return nil, fmt.Errorf("net transport: udp read (after discarding %d stray datagrams): %w", discarded, err)
		}
		if src.Addr().Unmap() != t.Server.Addr().Unmap() || src.Port() != t.Server.Port() {
			discarded++
			t.strays.Add(1)
			continue // response must come from the queried server
		}
		if n < 12 || binary.BigEndian.Uint16(buf[:2]) != id {
			discarded++
			t.strays.Add(1)
			continue // short datagram or mismatched transaction ID
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			// Corrupted in flight; a duplicate may still arrive intact.
			discarded++
			t.strays.Add(1)
			continue
		}
		if !resp.Header.Response {
			discarded++
			t.strays.Add(1)
			continue
		}
		return resp, nil
	}
}

func (t *NetTransport) exchangeTCP(ctx context.Context, wire []byte, timeout time.Duration) ([]byte, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", t.Server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := authserver.WriteTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	return authserver.ReadTCPMessage(conn)
}
