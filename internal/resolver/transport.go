package resolver

import (
	"fmt"
	"net"
	"net/netip"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

// EngineTransport exchanges messages with an in-process authoritative
// Engine, faithfully passing through the wire format (pack, truncate,
// unpack) so EDNS-driven truncation behaves exactly as on a socket.
// SimulatedRTT is reported as the exchange duration (TCP exchanges report
// twice the value: handshake plus query round), giving deterministic
// latency signals for the family-preference policy without sleeping.
type EngineTransport struct {
	Engine       *authserver.Engine
	Client       netip.Addr
	SimulatedRTT time.Duration
}

// Exchange implements Transport.
func (t *EngineTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	// Round-trip the query through the wire format too, so malformed
	// constructions are caught in tests.
	wire, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	parsed, err := dnswire.Unpack(wire)
	if err != nil {
		return nil, 0, err
	}
	r := t.Engine.Handle(parsed, t.Client, tcp)
	if r == nil {
		return nil, 0, fmt.Errorf("engine transport: query dropped (RRL)")
	}
	out, err := authserver.PackResponse(r, parsed, tcp)
	if err != nil {
		return nil, 0, err
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		return nil, 0, err
	}
	rtt := t.SimulatedRTT
	if rtt == 0 {
		rtt = time.Millisecond
	}
	if tcp {
		rtt *= 2
	}
	return resp, rtt, nil
}

// NetTransport exchanges messages with a real authoritative server over
// UDP and TCP sockets. The reported duration is the socket-level exchange
// time (for TCP: connect + query, matching how the paper estimates RTTs
// from TCP handshakes).
type NetTransport struct {
	// Server is the authoritative server address (UDP and TCP same port).
	Server netip.AddrPort
	// Timeout bounds each exchange (default 5s).
	Timeout time.Duration
}

// Exchange implements Transport.
func (t *NetTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	var raw []byte
	if tcp {
		raw, err = t.exchangeTCP(wire, timeout)
	} else {
		raw, err = t.exchangeUDP(wire, timeout)
	}
	elapsed := time.Since(start)
	if err != nil {
		return nil, elapsed, err
	}
	resp, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, elapsed, err
	}
	if resp.Header.ID != q.Header.ID {
		return nil, elapsed, fmt.Errorf("net transport: response ID %d != query ID %d", resp.Header.ID, q.Header.ID)
	}
	return resp, elapsed, nil
}

func (t *NetTransport) exchangeUDP(wire []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(t.Server))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func (t *NetTransport) exchangeTCP(wire []byte, timeout time.Duration) ([]byte, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", t.Server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := authserver.WriteTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	return authserver.ReadTCPMessage(conn)
}
