package resolver

import (
	"sync"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

// nsecRange is one cached RFC 8198 denial range.
type nsecRange struct {
	owner, next string
	expires     time.Time
}

// NSECCache is the RFC 8198 aggressive-negative-cache shared by the
// simulated resolver and the recursor tier: validated NSEC ranges from
// NXDOMAIN responses synthesize denials for every other covered name
// without a query reaching the authoritative server — the mechanism the
// paper suggests behind the 2020 decline in cloud junk traffic (§4.2.3).
// All methods are safe for concurrent use.
type NSECCache struct {
	origin string

	mu     sync.Mutex
	ranges []nsecRange
}

// NewNSECCache builds an empty cache for the zone rooted at origin.
func NewNSECCache(origin string) *NSECCache {
	return &NSECCache{origin: dnswire.CanonicalName(origin)}
}

// Remember stores the NSEC denial ranges of a validated negative
// response for later synthesis, each expiring at the given time.
func (c *NSECCache) Remember(resp *dnswire.Message, expires time.Time) {
	for _, rr := range resp.Authority {
		nsec, ok := rr.Data.(dnswire.NSECData)
		if !ok {
			continue
		}
		c.mu.Lock()
		c.ranges = append(c.ranges, nsecRange{
			owner:   dnswire.CanonicalName(rr.Name),
			next:    dnswire.CanonicalName(nsec.NextName),
			expires: expires,
		})
		c.mu.Unlock()
	}
}

// Covers reports whether any live cached NSEC range denies qname,
// compacting expired ranges as a side effect.
func (c *NSECCache) Covers(qname string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.ranges[:0]
	covered := false
	for _, nr := range c.ranges {
		if now.After(nr.expires) {
			continue
		}
		live = append(live, nr)
		if authserver.CoversName(c.origin, nr.owner, nr.next, qname) {
			covered = true
		}
	}
	c.ranges = live
	return covered
}

// Len returns the number of cached ranges (expired ones included until
// the next Covers call compacts them).
func (c *NSECCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ranges)
}
