package resolver

import (
	"fmt"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

func TestDenialRangesAreCorrect(t *testing.T) {
	cases := []struct {
		origin, qname string
	}{
		{"nl.", "aardvark.nl."},
		{"nl.", "zzz.nl."},
		{"nl.", "dog.nl."},
		{"nl.", "cat.nl."},
		{".", "chromiumjunk."},
		{".", "zzz."},
	}
	for _, c := range cases {
		owner, next := authserver.DenialRange(c.origin, c.qname)
		if !authserver.CoversName(c.origin, owner, next, c.qname) {
			t.Errorf("DenialRange(%q,%q) = (%q,%q) does not cover the name",
				c.origin, c.qname, owner, next)
		}
	}
	// Registered d<rank> names must never be covered by either range.
	for _, qname := range []string{"d0.nl.", "d123.nl.", "d99999.nl."} {
		for _, junk := range []string{"aaa.nl.", "zzz.nl."} {
			owner, next := authserver.DenialRange("nl.", junk)
			if authserver.CoversName("nl.", owner, next, qname) {
				t.Errorf("range for %q wrongly covers registered %q", junk, qname)
			}
		}
	}
}

func TestAggressiveNSECSuppressesJunkQueries(t *testing.T) {
	f := newFixture(t)
	mk := func(aggressive bool) *Resolver {
		r := New("nl.", Config{
			Validate:       true,
			AggressiveNSEC: aggressive,
			EDNSSize:       4096,
			Now:            func() time.Time { return f.now },
		})
		r.AddUpstream(FamilyV4, &EngineTransport{Engine: f.engine, Client: clientAddr})
		return r
	}

	// Without aggressive caching: every junk name is a fresh query.
	plain := mk(false)
	for i := 0; i < 50; i++ {
		res, err := plain.Resolve(fmt.Sprintf("junk%dzz.nl.", i), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("rcode = %s", res.RCode)
		}
	}
	if st := plain.Stats(); st.Sent < 50 {
		t.Fatalf("plain resolver sent %d queries, want ≥50", st.Sent)
	}

	// With aggressive caching: the first NXDOMAIN's NSEC covers the rest.
	agg := mk(true)
	for i := 0; i < 50; i++ {
		res, err := agg.Resolve(fmt.Sprintf("junk%dzz.nl.", i), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("rcode = %s", res.RCode)
		}
	}
	st := agg.Stats()
	if st.Sent > 3 {
		t.Fatalf("aggressive resolver sent %d queries, want ≈1", st.Sent)
	}
	if st.AggressiveHits < 45 {
		t.Fatalf("aggressive hits = %d, want ≈49", st.AggressiveHits)
	}
}

func TestAggressiveNSECDoesNotDenyRealNames(t *testing.T) {
	f := newFixture(t)
	r := New("nl.", Config{
		Validate:       true,
		AggressiveNSEC: true,
		EDNSSize:       4096,
		Now:            func() time.Time { return f.now },
	})
	r.AddUpstream(FamilyV4, &EngineTransport{Engine: f.engine, Client: clientAddr})
	// Prime the denial cache with junk from both lexical ranges.
	if _, err := r.Resolve("aaa-junk.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve("zzz-junk.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Registered names must still resolve positively.
	res, err := r.Resolve("www.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNoError || res.Delegation != "d5.nl." {
		t.Fatalf("res = %+v", res)
	}
}

func TestAggressiveNSECRangesExpire(t *testing.T) {
	f := newFixture(t)
	r := New("nl.", Config{
		Validate:       true,
		AggressiveNSEC: true,
		EDNSSize:       4096,
		Now:            func() time.Time { return f.now },
	})
	r.AddUpstream(FamilyV4, &EngineTransport{Engine: f.engine, Client: clientAddr})
	if _, err := r.Resolve("expired-junk.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	f.now = f.now.Add(3 * time.Hour)
	res, err := r.Resolve("other-junk.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("expired NSEC range still used")
	}
}
