package resolver

import (
	"errors"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

// flakyTransport fails the first N exchanges, then delegates.
type flakyTransport struct {
	failures int
	inner    Transport
	calls    int
}

func (f *flakyTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, 0, errors.New("injected transport failure")
	}
	return f.inner.Exchange(q, tcp)
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	f := newFixture(t)
	inner := &EngineTransport{Engine: f.engine, Client: clientAddr}
	flaky := &flakyTransport{failures: 1, inner: inner}
	r := New("nl.", Config{EDNSSize: 1232, Retries: 1,
		Now: func() time.Time { return f.now }})
	r.AddUpstream(FamilyV4, flaky)
	res, err := r.Resolve("www.d3.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if res.Queries != 2 {
		t.Errorf("queries = %d, want 2 (fail + retry)", res.Queries)
	}
}

func TestRetryFailsOverToOtherFamily(t *testing.T) {
	f := newFixture(t)
	dead := &flakyTransport{failures: 1 << 30, inner: nil} // always fails
	live := &EngineTransport{Engine: f.engine, Client: clientAddr, SimulatedRTT: time.Millisecond}
	r := New("nl.", Config{EDNSSize: 1232, Retries: 3, Seed: 1,
		Now: func() time.Time { return f.now }})
	r.AddUpstream(FamilyV4, dead)
	r.AddUpstream(FamilyV6, live)
	// The unmeasured v4 path is tried first by policy; retries must land
	// on v6 eventually for every name.
	for i := 0; i < 20; i++ {
		name := "www.d" + string(rune('0'+i%10)) + ".nl."
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	st := r.Stats()
	if st.ByFamily[FamilyV6] == 0 {
		t.Fatal("no traffic failed over to the live family")
	}
}

func TestRetryExhaustionReturnsError(t *testing.T) {
	f := newFixture(t)
	dead := &flakyTransport{failures: 1 << 30}
	r := New("nl.", Config{EDNSSize: 1232, Retries: 2,
		Now: func() time.Time { return f.now }})
	r.AddUpstream(FamilyV4, dead)
	if _, err := r.Resolve("www.d1.nl.", dnswire.TypeA); err == nil {
		t.Fatal("dead transport resolved")
	}
	if dead.calls != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", dead.calls)
	}
}

func TestPenaltyBounded(t *testing.T) {
	r := New("nl.", Config{})
	for i := 0; i < 100; i++ {
		r.penalize(FamilyV4)
	}
	if got := r.RTT(FamilyV4); got != 10*time.Second {
		t.Fatalf("srtt after 100 consecutive failures = %v, want the 10s cap", got)
	}
	if rto := r.RTO(FamilyV4); rto > 60*time.Second {
		t.Fatalf("rto grew unbounded: %v", rto)
	}
}
