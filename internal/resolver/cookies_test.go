package resolver

import (
	"fmt"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

func TestResolverCookiesBypassRRL(t *testing.T) {
	f := newFixture(t)
	mk := func(cookies bool, engine *authserver.Engine) *Resolver {
		r := New("nl.", Config{
			EDNSSize:   1232,
			UseCookies: cookies,
			Now:        func() time.Time { return f.now },
		})
		r.AddUpstream(FamilyV4, &EngineTransport{Engine: engine, Client: clientAddr})
		return r
	}
	rrlOpts := []authserver.Option{
		authserver.WithRRL(authserver.RRLConfig{RatePerSec: 0.0001, Burst: 2, SlipEvery: 1}),
		authserver.WithClock(func() time.Time { return f.now }),
	}

	// Without cookies: nearly everything after the burst retries on TCP.
	plain := mk(false, authserver.NewEngine(f.zone, rrlOpts...))
	for i := 0; i < 30; i++ {
		if _, err := plain.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if plain.Stats().TCPRetries < 25 {
		t.Fatalf("plain resolver TCP retries = %d, want ≈28", plain.Stats().TCPRetries)
	}

	// With cookies: after the first exchange the client is validated and
	// bypasses RRL (at most the first couple of queries slip).
	withCookies := mk(true, authserver.NewEngine(f.zone, rrlOpts...))
	for i := 0; i < 30; i++ {
		if _, err := withCookies.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if retries := withCookies.Stats().TCPRetries; retries > 2 {
		t.Fatalf("cookie resolver TCP retries = %d, want ≤2", retries)
	}
}

func TestResolverCookieStableAcrossQueries(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{EDNSSize: 1232, UseCookies: true})
	a := r.jar.Option()
	b := r.jar.Option()
	if len(a) < authserver.ClientCookieLen || string(a[:8]) != string(b[:8]) {
		t.Fatal("client cookie not stable")
	}
	// After an exchange, the server cookie is attached.
	if _, err := r.Resolve("www.d1.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	c := r.jar.Option()
	if len(c) != authserver.ClientCookieLen+authserver.ServerCookieLen {
		t.Fatalf("cookie option after exchange = %d bytes", len(c))
	}
}
