package resolver

import (
	"fmt"
	"net/netip"
	"testing"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

// TestNetTransportTCPFallback drives the real-socket transport through the
// truncation → TCP retry path against a live server.
func TestNetTransportTCPFallback(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 500, 0, 1.0, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := authserver.Listen("127.0.0.1:0", authserver.NewEngine(z))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A fully signed zone + 512-byte EDNS + DO: every referral truncates.
	r := New("nl.", Config{Validate: true, EDNSSize: 512})
	r.AddUpstream(FamilyV4, &NetTransport{Server: srv.Addr()})
	for i := 0; i < 20; i++ {
		res, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delegation == "" {
			t.Fatalf("no delegation for d%d", i)
		}
	}
	st := r.Stats()
	if st.ByTCP[true] == 0 {
		t.Fatal("no TCP retries over real sockets")
	}
	if st.Truncated == 0 {
		t.Fatal("no truncated responses observed")
	}
}

// TestNetTransportErrorSurface covers the unreachable-server path.
func TestNetTransportErrorSurface(t *testing.T) {
	r := New("nl.", Config{EDNSSize: 1232, Retries: 0})
	// 192.0.2.0/24 is TEST-NET; nothing is listening on loopback port 1.
	r.AddUpstream(FamilyV4, &NetTransport{Server: netip.MustParseAddrPort("127.0.0.1:1"), Timeout: 200_000_000})
	if _, err := r.Resolve("www.d1.nl.", dnswire.TypeA); err == nil {
		t.Fatal("unreachable server resolved")
	}
}
