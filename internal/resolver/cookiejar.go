package resolver

import (
	"math/rand"
	"sync"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

// CookieJar round-trips RFC 7873 DNS cookies for one client↔server
// pair: it generates the client cookie lazily, remembers the last
// server cookie the server echoed, and attaches both to outgoing
// queries. A client presenting a valid server cookie proves its source
// address is not spoofed, so cookie-validating servers exempt it from
// response rate limiting — the exemption both the simulated resolver
// and the recursor's upstream path claim through this type.
//
// The jar is safe for concurrent use; each upstream server needs its
// own jar, because server cookies are bound to the issuing server.
type CookieJar struct {
	mu     sync.Mutex
	rng    *rand.Rand
	client []byte
	server []byte
}

// NewCookieJar builds a jar whose client cookie derives from seed, so
// runs are reproducible.
func NewCookieJar(seed int64) *CookieJar {
	return &CookieJar{rng: rand.New(rand.NewSource(seed))}
}

// Option returns the COOKIE option payload: the client cookie plus the
// last learned server cookie, if any.
func (j *CookieJar) Option() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.client == nil {
		j.client = make([]byte, authserver.ClientCookieLen)
		j.rng.Read(j.client)
	}
	out := append([]byte(nil), j.client...)
	return append(out, j.server...)
}

// Attach appends the COOKIE option to a query that already carries an
// OPT record (cookies require EDNS; without one this is a no-op).
func (j *CookieJar) Attach(q *dnswire.Message) {
	if q.Edns == nil {
		return
	}
	q.Edns.Options = append(q.Edns.Options, dnswire.EDNSOption{
		Code: dnswire.EDNSOptionCookie, Data: j.Option(),
	})
}

// Learn remembers the server cookie echoed in a response.
func (j *CookieJar) Learn(resp *dnswire.Message) {
	if resp == nil || resp.Edns == nil {
		return
	}
	for _, opt := range resp.Edns.Options {
		if opt.Code == dnswire.EDNSOptionCookie && len(opt.Data) > authserver.ClientCookieLen {
			j.mu.Lock()
			j.server = append(j.server[:0], opt.Data[authserver.ClientCookieLen:]...)
			j.mu.Unlock()
		}
	}
}
