package resolver

import (
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

var clientAddr = netip.MustParseAddr("100.0.0.1")

type fixture struct {
	engine *authserver.Engine
	zone   *zonedb.Zone
	now    time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 1000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: authserver.NewEngine(z), zone: z, now: time.Unix(1586000000, 0)}
}

func newNZFixture(t *testing.T) *fixture {
	t.Helper()
	z, err := zonedb.NewCcTLD("nz", 140, 570, 0.3, []string{"ns1.dns.net.nz"})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: authserver.NewEngine(z), zone: z, now: time.Unix(1586000000, 0)}
}

func (f *fixture) resolver(cfg Config) *Resolver {
	cfg.Now = func() time.Time { return f.now }
	r := New(f.zone.Origin, cfg)
	r.AddUpstream(FamilyV4, &EngineTransport{Engine: f.engine, Client: clientAddr, SimulatedRTT: 10 * time.Millisecond})
	return r
}

func TestDirectResolutionSendsOneQuery(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{EDNSSize: 1232})
	res, err := r.Resolve("www.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.Queries != 1 || res.Delegation != "d5.nl." || res.RCode != dnswire.RCodeNoError {
		t.Fatalf("res = %+v", res)
	}
	st := r.Stats()
	if st.Sent != 1 || st.ByType[dnswire.TypeA] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheSuppressesRepeatQueries(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{EDNSSize: 1232})
	if _, err := r.Resolve("www.d5.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Same delegation, different host: covered by cached referral.
	res, err := r.Resolve("mail.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Queries != 0 {
		t.Fatalf("res = %+v", res)
	}
	if st := r.Stats(); st.Sent != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheExpires(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{EDNSSize: 1232})
	if _, err := r.Resolve("www.d5.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	f.now = f.now.Add(2 * time.Hour) // past the 1h cap
	res, err := r.Resolve("www.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("expired entry served from cache")
	}
}

func TestNXDomainNegativeCache(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{EDNSSize: 1232})
	res, err := r.Resolve("junk12345.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", res.RCode)
	}
	res, err = r.Resolve("junk12345.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("negative answer not cached")
	}
}

func TestQminSendsNSQueries(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{Qmin: true, EDNSSize: 1232})
	res, err := r.Resolve("www.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delegation != "d5.nl." {
		t.Fatalf("delegation = %q", res.Delegation)
	}
	st := r.Stats()
	if st.ByType[dnswire.TypeNS] == 0 {
		t.Fatal("Q-min resolver sent no NS queries")
	}
	if st.ByType[dnswire.TypeA] != 0 {
		t.Fatal("Q-min resolver leaked the full query type to the TLD")
	}
}

func TestQminWalksThroughENT(t *testing.T) {
	f := newNZFixture(t)
	r := f.resolver(Config{Qmin: true, EDNSSize: 1232})
	name, err := f.zone.DomainName(200) // third-level, e.g. d200.<cat>.nz.
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Resolve("www."+name, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delegation != name {
		t.Fatalf("delegation = %q, want %q", res.Delegation, name)
	}
	// Two NS queries: the category (ENT → NODATA) then the domain.
	if res.Queries != 2 {
		t.Fatalf("queries = %d, want 2", res.Queries)
	}
	// Second resolution under the same category but other domain: the
	// cached ENT suppresses the first step.
	name2, _ := f.zone.DomainName(200 + 8*len(zonedb.NZCategories))
	res2, err := r.Resolve("www."+name2, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Queries != 1 {
		t.Fatalf("second resolution queries = %d, want 1 (ENT cached)", res2.Queries)
	}
}

func TestQminNXDomainStopsWalk(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{Qmin: true, EDNSSize: 1232})
	res, err := r.Resolve("a.b.c.notthere.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", res.RCode)
	}
	if res.Queries != 1 {
		t.Fatalf("queries = %d, want 1 (stop at first NXDOMAIN)", res.Queries)
	}
}

func TestValidationAddsDSAndDNSKEY(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{Validate: true, EDNSSize: 4096})
	res, err := r.Resolve("www.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// 1 A + 1 DS + 1 DNSKEY.
	if res.Queries != 3 {
		t.Fatalf("queries = %d, want 3", res.Queries)
	}
	st := r.Stats()
	if st.ByType[dnswire.TypeDS] != 1 || st.ByType[dnswire.TypeDNSKEY] != 1 {
		t.Fatalf("stats = %+v", st.ByType)
	}
	// Another domain: new DS, but DNSKEY is cached.
	if _, err := r.Resolve("www.d6.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.ByType[dnswire.TypeDS] != 2 {
		t.Fatalf("DS queries = %d, want 2 (per-domain)", st.ByType[dnswire.TypeDS])
	}
	if st.ByType[dnswire.TypeDNSKEY] != 1 {
		t.Fatalf("DNSKEY queries = %d, want 1 (per-TTL)", st.ByType[dnswire.TypeDNSKEY])
	}
}

func TestTruncationTriggersTCPRetry(t *testing.T) {
	f := newFixture(t)
	// RRL with zero budget: every UDP query slips with TC=1.
	z := f.zone
	eng := authserver.NewEngine(z, authserver.WithRRL(authserver.RRLConfig{
		RatePerSec: 0.000001, Burst: 0.000001, SlipEvery: 1,
	}))
	r := New(z.Origin, Config{EDNSSize: 1232, Now: func() time.Time { return f.now }})
	r.AddUpstream(FamilyV4, &EngineTransport{Engine: eng, Client: clientAddr})
	res, err := r.Resolve("www.d5.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 2 {
		t.Fatalf("queries = %d, want 2 (UDP then TCP)", res.Queries)
	}
	st := r.Stats()
	if st.Truncated != 1 || st.TCPRetries != 1 || st.ByTCP[true] != 1 || st.ByTCP[false] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSmallEDNSTruncatedApexAnswer(t *testing.T) {
	f := newFixture(t)
	// No EDNS at all: a large DNSKEY-ish answer still fits, so use the
	// referral path with DO to blow past 512?  The apex NS with glue from
	// two servers fits in 512; instead verify that EDNSSize=0 sends no OPT.
	r := f.resolver(Config{})
	if _, err := r.Resolve("www.d5.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// The engine saw a query without EDNS; nothing to assert beyond
	// success and no crash — covered by stats.
	if st := r.Stats(); st.Sent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFamilyPreferenceFollowsRTT(t *testing.T) {
	f := newFixture(t)
	r := New(f.zone.Origin, Config{EDNSSize: 1232, Seed: 42, ExploreProb: 0.1,
		Now: func() time.Time { return f.now }})
	r.AddUpstream(FamilyV4, &EngineTransport{Engine: f.engine, Client: clientAddr, SimulatedRTT: 50 * time.Millisecond})
	r.AddUpstream(FamilyV6, &EngineTransport{Engine: f.engine, Client: clientAddr, SimulatedRTT: 5 * time.Millisecond})
	// Resolve many distinct names so the cache doesn't absorb traffic.
	for i := 0; i < 300; i++ {
		name, _ := f.zone.DomainName(i % 1000)
		if _, err := r.Resolve("www."+name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
		f.now = f.now.Add(2 * time.Hour) // expire cache each round
	}
	st := r.Stats()
	v6 := float64(st.ByFamily[FamilyV6])
	v4 := float64(st.ByFamily[FamilyV4])
	frac := v6 / (v6 + v4)
	if frac < 0.75 {
		t.Fatalf("v6 fraction = %v, want > 0.75 when v6 is 10x faster", frac)
	}
	if v4 == 0 {
		t.Fatal("no exploration of the slower family at all")
	}
	if r.RTT(FamilyV6) == 0 || r.RTT(FamilyV4) == 0 {
		t.Fatal("RTT estimators not populated")
	}
	if r.RTT(FamilyV6) >= r.RTT(FamilyV4) {
		t.Fatalf("RTT estimates inverted: v6=%v v4=%v", r.RTT(FamilyV6), r.RTT(FamilyV4))
	}
}

func TestSingleFamilyAlwaysUsed(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{EDNSSize: 1232}) // only v4 registered
	for i := 0; i < 10; i++ {
		name, _ := f.zone.DomainName(i)
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.ByFamily[FamilyV6] != 0 || st.ByFamily[FamilyV4] == 0 {
		t.Fatalf("stats = %+v", st.ByFamily)
	}
}

func TestNoUpstreamError(t *testing.T) {
	r := New("nl.", Config{})
	if _, err := r.Resolve("x.nl.", dnswire.TypeA); err == nil {
		t.Fatal("resolve without upstream succeeded")
	}
}

func TestOutOfZoneRejected(t *testing.T) {
	f := newFixture(t)
	r := f.resolver(Config{})
	if _, err := r.Resolve("example.com.", dnswire.TypeA); err == nil {
		t.Fatal("out-of-zone name accepted")
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyV4.String() != "IPv4" || FamilyV6.String() != "IPv6" {
		t.Error("family names")
	}
}

func TestResolveAgainstRealServer(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 100, 0, 0.5, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := authserver.Listen("127.0.0.1:0", authserver.NewEngine(z))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	r := New("nl.", Config{Qmin: true, Validate: true, EDNSSize: 1232})
	r.AddUpstream(FamilyV4, &NetTransport{Server: srv.Addr()})
	res, err := r.Resolve("www.d3.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delegation != "d3.nl." {
		t.Fatalf("res = %+v", res)
	}
	if r.RTT(FamilyV4) == 0 {
		t.Fatal("no RTT measured over real sockets")
	}
}
