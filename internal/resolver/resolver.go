// Package resolver implements the client side of the paper's measured
// traffic: a caching recursive resolver as seen from a TLD/root
// authoritative server. It models exactly the behaviors the paper
// attributes to cloud resolvers:
//
//   - QNAME minimization (RFC 7816): NS queries for names "one label more
//     than the zone" walked down until the delegation is found (§4.2.1);
//   - DNSSEC validation: DS queries per delegation and periodic DNSKEY
//     queries for the zone apex (§4.2.2);
//   - EDNS(0) buffer sizes driving truncation and TCP retry (§4.4);
//   - dual-stack IPv4/IPv6 upstream choice informed by measured RTT
//     (§4.3, following Müller et al.'s "Recursives in the Wild");
//   - TTL caching, so only cache misses reach the authoritative server.
package resolver

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/telemetry"
)

// Family selects the IP family of an upstream exchange.
type Family int

// Families.
const (
	FamilyV4 Family = 4
	FamilyV6 Family = 6
)

// String names the family.
func (f Family) String() string {
	if f == FamilyV6 {
		return "IPv6"
	}
	return "IPv4"
}

// Transport performs one DNS exchange with the authoritative server and
// reports how long it took (the RTT signal for family preference).
type Transport interface {
	Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error)
}

// DeadlineTransport is a Transport that accepts a per-exchange timeout,
// letting the resolver escalate deadlines attempt by attempt instead of
// waiting a full fixed timeout on every retry of a lossy path.
type DeadlineTransport interface {
	Transport
	ExchangeDeadline(q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error)
}

// Config shapes resolver behavior.
type Config struct {
	// Qmin enables QNAME minimization.
	Qmin bool
	// Validate enables DNSSEC validation queries (DS + DNSKEY).
	Validate bool
	// AggressiveNSEC enables RFC 8198 aggressive use of DNSSEC-validated
	// negative answers: NSEC ranges from NXDOMAIN responses synthesize
	// denials for other covered names without querying, the mechanism the
	// paper suggests behind the 2020 decline in cloud junk (§4.2.3).
	// Requires Validate.
	AggressiveNSEC bool
	// EDNSSize is the advertised EDNS(0) UDP payload size; 0 sends
	// queries without EDNS (classic 512-byte behavior).
	EDNSSize uint16
	// UseCookies attaches RFC 7873 DNS COOKIE options (requires EDNS).
	// Servers exempt cookie-validated clients from rate limiting.
	UseCookies bool
	// ExploreProb is the probability of querying the slower family when
	// both are available (default 0.1).
	ExploreProb float64
	// Retries is how many extra attempts a failed exchange gets (each
	// retry re-picks the family, so a broken path fails over). Default 1.
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it (±50% jitter, capped at MaxBackoff).
	// 0 disables backoff, preserving the tight-loop behavior.
	RetryBackoff time.Duration
	// MaxBackoff caps the escalated backoff delay (default 2s).
	MaxBackoff time.Duration
	// AttemptTimeout enables per-attempt timeout escalation on
	// DeadlineTransport upstreams: attempt k gets
	// max(AttemptTimeout, RTO(family)) << k, where RTO is the
	// Jacobson-style SRTT + 4·RTTVAR estimate. 0 leaves the transport's
	// own timeout in charge.
	AttemptTimeout time.Duration
	// RetryServfail treats SERVFAIL responses as failed attempts (the
	// brownout signature): the exchange is retried on a re-picked
	// family, and only after the budget is exhausted is the SERVFAIL
	// surfaced to the caller.
	RetryServfail bool
	// Sleep is the backoff wait hook (default time.Sleep); simulations
	// point it at a virtual clock.
	Sleep func(time.Duration)
	// Now is the clock used for TTL caching (default time.Now).
	Now func() time.Time
	// Seed makes the resolver's random decisions reproducible.
	Seed int64
	// Telemetry, when set, publishes live retry/fallback/RTT metrics on
	// the registry (resolver_* series). Nil — the default — makes every
	// instrumentation site a no-op.
	Telemetry *telemetry.Registry
}

// resolverMetrics is the live telemetry mirror of Stats. All fields are
// nil when Config.Telemetry is unset, so the increments below cost one
// branch each.
type resolverMetrics struct {
	sent            *telemetry.Counter
	cacheHits       *telemetry.Counter
	retries         *telemetry.Counter
	rtoEscalations  *telemetry.Counter
	servfailRetries *telemetry.Counter
	tcpFallbacks    *telemetry.Counter
	attemptErrors   *telemetry.Counter
	failedExchanges *telemetry.Counter
	rtt             *telemetry.Histogram
}

func newResolverMetrics(reg *telemetry.Registry) resolverMetrics {
	return resolverMetrics{
		sent:            reg.Counter("resolver_queries_sent_total"),
		cacheHits:       reg.Counter("resolver_cache_hits_total"),
		retries:         reg.Counter("resolver_retries_total"),
		rtoEscalations:  reg.Counter("resolver_rto_escalations_total"),
		servfailRetries: reg.Counter("resolver_servfail_retries_total"),
		tcpFallbacks:    reg.Counter("resolver_tcp_fallbacks_total"),
		attemptErrors:   reg.Counter("resolver_attempt_errors_total"),
		failedExchanges: reg.Counter("resolver_failed_exchanges_total"),
		rtt:             reg.Histogram("resolver_rtt_seconds"),
	}
}

// Stats counts queries actually sent to the authoritative server, broken
// down the way the paper's tables are.
type Stats struct {
	Sent       uint64
	ByFamily   map[Family]uint64
	ByTCP      map[bool]uint64
	ByType     map[dnswire.Type]uint64
	CacheHits  uint64
	Truncated  uint64 // responses that came back TC=1
	TCPRetries uint64
	// AggressiveHits counts NXDOMAINs synthesized from cached NSEC
	// ranges (RFC 8198) without any query reaching the server.
	AggressiveHits uint64
	// Robustness accounting: Exchanges counts logical exchanges (one
	// per name/type the resolver needed answered); Sent counts wire
	// queries, so Sent/Exchanges is the retry amplification a perfect
	// network would hold at 1.0.
	Exchanges       uint64
	Retries         uint64 // wire attempts beyond each exchange's first
	AttemptErrors   uint64 // attempts that failed (timeout, corrupt, refused)
	ServfailRetries uint64 // attempts retried because of a SERVFAIL answer
	FailedExchanges uint64 // exchanges that exhausted the retry budget
}

// Result summarizes one resolution from the vantage of the TLD server.
type Result struct {
	RCode      dnswire.RCode
	Delegation string // the delegation the name lives under ("" if none)
	CacheHit   bool   // true when no query reached the server
	Queries    int    // queries sent for this resolution
}

var (
	// ErrNoUpstream is returned when no transport is registered.
	ErrNoUpstream = errors.New("resolver: no upstream transport")
	// ErrExchange wraps transport failures.
	ErrExchange = errors.New("resolver: exchange failed")
)

type cacheKey struct {
	name string
	typ  dnswire.Type
}

type cacheEntry struct {
	expires    time.Time
	rcode      dnswire.RCode
	delegation string
}

// rttEstimate is a per-family Jacobson/Karels estimator: the smoothed
// RTT drives upstream preference, and SRTT + 4·RTTVAR is the
// retransmission timeout base for per-attempt deadline escalation.
type rttEstimate struct {
	srtt   time.Duration
	rttvar time.Duration
}

// rto returns the retransmission timeout (0 when unmeasured).
func (e rttEstimate) rto() time.Duration {
	if e.srtt == 0 {
		return 0
	}
	return e.srtt + 4*e.rttvar
}

// Resolver is a simulated caching resolver pointed at one zone's
// authoritative servers.
type Resolver struct {
	origin string
	cfg    Config

	mu        sync.Mutex
	upstreams map[Family]Transport
	rtt       map[Family]rttEstimate
	cache     map[cacheKey]cacheEntry
	nsec      *NSECCache
	jar       *CookieJar
	rng       *rand.Rand
	nextID    uint16
	stats     Stats
	tm        resolverMetrics
}

// New builds a resolver for the zone rooted at origin.
func New(origin string, cfg Config) *Resolver {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.ExploreProb <= 0 {
		cfg.ExploreProb = 0.1
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return &Resolver{
		origin:    dnswire.CanonicalName(origin),
		cfg:       cfg,
		upstreams: make(map[Family]Transport),
		rtt:       make(map[Family]rttEstimate),
		cache:     make(map[cacheKey]cacheEntry),
		nsec:      NewNSECCache(origin),
		jar:       NewCookieJar(cfg.Seed),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tm:        newResolverMetrics(cfg.Telemetry),
	}
}

// AddUpstream registers the transport for one family. Registering both
// families enables the RTT-preference policy.
func (r *Resolver) AddUpstream(f Family, t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.upstreams[f] = t
}

// Stats returns a snapshot of the counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.stats
	out.ByFamily = copyMap(r.stats.ByFamily)
	out.ByTCP = copyMap(r.stats.ByTCP)
	out.ByType = copyMap(r.stats.ByType)
	return out
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RTT returns the smoothed RTT estimate for a family (0 if unmeasured).
func (r *Resolver) RTT(f Family) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rtt[f].srtt
}

// RTO returns the retransmission-timeout estimate (SRTT + 4·RTTVAR)
// for a family, 0 if unmeasured.
func (r *Resolver) RTO(f Family) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rtt[f].rto()
}

// chooseFamily implements the latency-driven preference: pick the family
// with the lower smoothed RTT, but explore the other with ExploreProb.
func (r *Resolver) chooseFamily() (Family, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, has4 := r.upstreams[FamilyV4]
	_, has6 := r.upstreams[FamilyV6]
	switch {
	case !has4 && !has6:
		return 0, ErrNoUpstream
	case has4 && !has6:
		return FamilyV4, nil
	case has6 && !has4:
		return FamilyV6, nil
	}
	rtt4, rtt6 := r.rtt[FamilyV4].srtt, r.rtt[FamilyV6].srtt
	// Unmeasured families get explored first.
	if rtt4 == 0 {
		return FamilyV4, nil
	}
	if rtt6 == 0 {
		return FamilyV6, nil
	}
	fast, slow := FamilyV4, FamilyV6
	rf, rs := rtt4, rtt6
	if rtt6 < rtt4 {
		fast, slow = FamilyV6, FamilyV4
		rf, rs = rtt6, rtt4
	}
	// Comparable RTTs (within 20%) get an even split, matching the
	// observed behavior of production resolvers ("Recursives in the
	// Wild"); clearly slower paths only see exploration traffic.
	if rs-rf < rs/5 {
		if r.rng.Float64() < 0.5 {
			return slow, nil
		}
		return fast, nil
	}
	if r.rng.Float64() < r.cfg.ExploreProb {
		return slow, nil
	}
	return fast, nil
}

// errServfailAnswer marks an attempt that completed but answered
// SERVFAIL, retried under Config.RetryServfail.
var errServfailAnswer = errors.New("resolver: upstream answered SERVFAIL")

// exchange sends one query with retry-and-failover: a failed attempt is
// retried (re-picking the family) up to Retries extra times, like
// production resolvers cycling through their upstream set. Retries back
// off exponentially with jitter when RetryBackoff is set, so a
// browned-out server is not hammered in a tight loop.
func (r *Resolver) exchange(name string, typ dnswire.Type) (*dnswire.Message, int, error) {
	retries := r.cfg.Retries
	if retries <= 0 {
		retries = 1
	}
	r.count(func(s *Stats) { s.Exchanges++ })
	sent := 0
	var err error
	var lastServfail *dnswire.Message
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			r.count(func(s *Stats) { s.Retries++ })
			r.tm.retries.Inc()
			r.backoff(attempt)
		}
		var resp *dnswire.Message
		var n int
		resp, n, err = r.exchangeOnce(name, typ, attempt)
		sent += n
		if err == nil {
			return resp, sent, nil
		}
		if errors.Is(err, errServfailAnswer) {
			lastServfail = resp
			r.count(func(s *Stats) { s.ServfailRetries++ })
			r.tm.servfailRetries.Inc()
		} else {
			r.count(func(s *Stats) { s.AttemptErrors++ })
			r.tm.attemptErrors.Inc()
		}
		if errors.Is(err, ErrNoUpstream) {
			break // nothing to fail over to
		}
	}
	if lastServfail != nil && errors.Is(err, errServfailAnswer) {
		// Every server stayed browned out: surface the SERVFAIL answer
		// itself rather than failing the lookup outright.
		return lastServfail, sent, nil
	}
	r.count(func(s *Stats) { s.FailedExchanges++ })
	r.tm.failedExchanges.Inc()
	return nil, sent, err
}

// backoff sleeps before retry attempt k (k ≥ 1): base·2^(k-1) with
// ±50% jitter, capped at MaxBackoff. A zero base disables the wait.
func (r *Resolver) backoff(attempt int) {
	base := r.cfg.RetryBackoff
	if base <= 0 {
		return
	}
	d := base << (attempt - 1)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	jitter := 0.5 + r.rng.Float64()
	r.mu.Unlock()
	r.cfg.Sleep(time.Duration(float64(d) * jitter))
}

// attemptTimeout computes the escalated deadline for one attempt:
// max(AttemptTimeout, RTO) doubled per retry. 0 means "transport
// default" (escalation disabled).
func (r *Resolver) attemptTimeout(fam Family, attempt int) time.Duration {
	base := r.cfg.AttemptTimeout
	if base <= 0 {
		return 0
	}
	r.mu.Lock()
	rto := r.rtt[fam].rto()
	r.mu.Unlock()
	if rto > base {
		base = rto
	}
	if attempt > 0 {
		// Each retry doubles the working deadline — the RTO escalation
		// the paper's junk-traffic inflation partly comes from.
		r.tm.rtoEscalations.Inc()
	}
	const maxTimeout = 8 * time.Second
	d := base << attempt
	if d > maxTimeout || d <= 0 {
		d = maxTimeout
	}
	return d
}

// send performs one wire exchange, escalating the deadline when the
// transport supports it.
func (r *Resolver) send(t Transport, q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	if dt, ok := t.(DeadlineTransport); ok && timeout > 0 {
		return dt.ExchangeDeadline(q, tcp, timeout)
	}
	return t.Exchange(q, tcp)
}

// exchangeOnce sends one query, handling family choice, RTT accounting,
// truncation (TCP retry) and stats. It may send up to two wire queries.
func (r *Resolver) exchangeOnce(name string, typ dnswire.Type, attempt int) (*dnswire.Message, int, error) {
	fam, err := r.chooseFamily()
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	t := r.upstreams[fam]
	r.nextID++
	id := r.nextID
	r.mu.Unlock()

	q := dnswire.NewQuery(id, name, typ)
	if r.cfg.EDNSSize > 0 {
		q.WithEdns(r.cfg.EDNSSize, r.cfg.Validate)
		if r.cfg.UseCookies {
			r.jar.Attach(q)
		}
	}

	timeout := r.attemptTimeout(fam, attempt)
	sent := 0
	resp, rtt, err := r.send(t, q, false, timeout)
	sent++
	r.note(fam, false, typ, rtt, err == nil)
	if err != nil {
		return nil, sent, fmt.Errorf("%w: udp %s %s: %v", ErrExchange, name, typ, err)
	}
	r.learnCookie(resp)
	if resp.Header.Truncated {
		r.mu.Lock()
		r.stats.Truncated++
		r.stats.TCPRetries++
		r.mu.Unlock()
		r.tm.tcpFallbacks.Inc()
		resp, rtt, err = r.send(t, q, true, timeout)
		sent++
		r.note(fam, true, typ, rtt, err == nil)
		if err != nil {
			return nil, sent, fmt.Errorf("%w: tcp %s %s: %v", ErrExchange, name, typ, err)
		}
	}
	if r.cfg.RetryServfail && resp.Header.RCode == dnswire.RCodeServFail {
		// The answer arrived but the server is failing; penalize the
		// family like a loss so retries prefer the other path.
		r.penalize(fam)
		return resp, sent, fmt.Errorf("%w: %s %s via %s", errServfailAnswer, name, typ, fam)
	}
	return resp, sent, nil
}

// count applies a stats mutation under the lock.
func (r *Resolver) count(f func(*Stats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// learnCookie remembers the server cookie echoed in a response.
func (r *Resolver) learnCookie(resp *dnswire.Message) {
	if !r.cfg.UseCookies {
		return
	}
	r.jar.Learn(resp)
}

// note updates stats and the RTT estimator.
func (r *Resolver) note(f Family, tcp bool, typ dnswire.Type, rtt time.Duration, ok bool) {
	r.tm.sent.Inc()
	if ok && rtt > 0 {
		r.tm.rtt.Observe(rtt)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Sent++
	if r.stats.ByFamily == nil {
		r.stats.ByFamily = make(map[Family]uint64)
		r.stats.ByTCP = make(map[bool]uint64)
		r.stats.ByType = make(map[dnswire.Type]uint64)
	}
	r.stats.ByFamily[f]++
	r.stats.ByTCP[tcp]++
	r.stats.ByType[typ]++
	if ok && rtt > 0 {
		e := r.rtt[f]
		if e.srtt == 0 {
			e.srtt, e.rttvar = rtt, rtt/2
		} else {
			dev := rtt - e.srtt
			if dev < 0 {
				dev = -dev
			}
			e.rttvar = (3*e.rttvar + dev) / 4
			e.srtt = (7*e.srtt + rtt) / 8
		}
		r.rtt[f] = e
		return
	}
	if !ok {
		r.penalizeLocked(f)
	}
}

// penalize degrades a family's estimate so retries fail over.
func (r *Resolver) penalize(f Family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.penalizeLocked(f)
}

func (r *Resolver) penalizeLocked(f Family) {
	// A failed exchange penalizes the family's estimate so retries
	// fail over to the other upstream, and inflates the variance so the
	// escalated RTO stays conservative while the path is suspect.
	e := r.rtt[f]
	penalty := 2 * time.Second
	if e.srtt*2 > penalty {
		penalty = e.srtt * 2
	}
	// Cap the degraded estimate so consecutive failures cannot double it
	// without bound: past the cap it no longer orders preferences or
	// changes the (8s-capped) escalated RTO, it only poisons the estimate.
	if maxPenalty := 10 * time.Second; penalty > maxPenalty {
		penalty = maxPenalty
	}
	e.srtt = penalty
	if e.rttvar < penalty/4 {
		e.rttvar = penalty / 4
	}
	r.rtt[f] = e
}

// cacheGet returns a live cache entry.
func (r *Resolver) cacheGet(name string, typ dnswire.Type) (cacheEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cache[cacheKey{name, typ}]
	if !ok || r.cfg.Now().After(e.expires) {
		return cacheEntry{}, false
	}
	return e, true
}

func (r *Resolver) cachePut(name string, typ dnswire.Type, e cacheEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[cacheKey{name, typ}] = e
}

// ttlOf extracts a caching TTL from a response (minimum RR TTL, or the SOA
// minimum for negative answers), floored at 1s and capped at 1h to keep
// simulations lively.
func ttlOf(m *dnswire.Message) time.Duration {
	best := uint32(3600)
	seen := false
	scan := func(rrs []dnswire.RR) {
		for _, rr := range rrs {
			if rr.TTL < best || !seen {
				best, seen = rr.TTL, true
			}
			if soa, ok := rr.Data.(dnswire.SOAData); ok {
				if soa.Minimum < best {
					best = soa.Minimum
				}
			}
		}
	}
	scan(m.Answers)
	scan(m.Authority)
	if best < 1 {
		best = 1
	}
	if best > 3600 {
		best = 3600
	}
	return time.Duration(best) * time.Second
}

// classify inspects a TLD response: the delegation it refers to, if any.
func classify(m *dnswire.Message) (delegation string, delegated bool) {
	for _, rr := range m.Authority {
		if rr.Data.Type() == dnswire.TypeNS {
			return rr.Name, true
		}
	}
	for _, rr := range m.Answers {
		if rr.Data.Type() == dnswire.TypeNS {
			return rr.Name, true
		}
	}
	return "", false
}

// Resolve performs the TLD-side work to resolve (qname, qtype): finds the
// covering delegation (possibly via QNAME minimization), performs DNSSEC
// validation queries if configured, and returns what the authoritative
// vantage point saw.
func (r *Resolver) Resolve(qname string, qtype dnswire.Type) (*Result, error) {
	qname = dnswire.CanonicalName(qname)
	if !dnswire.IsSubdomain(qname, r.origin) {
		return nil, fmt.Errorf("resolver: %s not under %s", qname, r.origin)
	}
	res := &Result{}

	// Cache: any cached covering delegation means no query is sent.
	if e, ok := r.coveringDelegation(qname); ok {
		r.tm.cacheHits.Inc()
		r.mu.Lock()
		r.stats.CacheHits++
		r.mu.Unlock()
		res.CacheHit = true
		res.RCode = e.rcode
		res.Delegation = e.delegation
		return res, nil
	}
	// Cached negative answer?
	if e, ok := r.cacheGet(qname, qtype); ok && e.rcode == dnswire.RCodeNXDomain {
		r.tm.cacheHits.Inc()
		r.mu.Lock()
		r.stats.CacheHits++
		r.mu.Unlock()
		res.CacheHit = true
		res.RCode = dnswire.RCodeNXDomain
		return res, nil
	}
	// RFC 8198: a cached validated NSEC range covering qname lets us
	// synthesize NXDOMAIN without asking the authoritative server at all.
	if r.cfg.AggressiveNSEC && r.nsec.Covers(qname, r.cfg.Now()) {
		r.tm.cacheHits.Inc()
		r.mu.Lock()
		r.stats.CacheHits++
		r.stats.AggressiveHits++
		r.mu.Unlock()
		res.CacheHit = true
		res.RCode = dnswire.RCodeNXDomain
		return res, nil
	}

	var err error
	if r.cfg.Qmin {
		err = r.resolveQmin(qname, res)
	} else {
		err = r.resolveDirect(qname, qtype, res)
	}
	if err != nil {
		return nil, err
	}
	if r.cfg.Validate && res.Delegation != "" {
		if err := r.validate(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// coveringDelegation scans cached NS entries for qname's suffixes.
func (r *Resolver) coveringDelegation(qname string) (cacheEntry, bool) {
	name := qname
	for {
		if name == r.origin || !dnswire.IsSubdomain(name, r.origin) {
			return cacheEntry{}, false
		}
		if e, ok := r.cacheGet(name, dnswire.TypeNS); ok && e.delegation != "" {
			return e, true
		}
		name = dnswire.ParentName(name)
	}
}

// resolveDirect sends the full qname/qtype, pre-RFC7816 style.
func (r *Resolver) resolveDirect(qname string, qtype dnswire.Type, res *Result) error {
	resp, sent, err := r.exchange(qname, qtype)
	res.Queries += sent
	if err != nil {
		return err
	}
	return r.absorb(qname, qtype, resp, res)
}

// resolveQmin walks NS queries down one label at a time (RFC 7816 §3).
func (r *Resolver) resolveQmin(qname string, res *Result) error {
	labels := dnswire.SplitLabels(qname)
	originCount := dnswire.CountLabels(r.origin)
	// Build names from apex+1 label to the full name.
	for depth := originCount + 1; depth <= len(labels); depth++ {
		name := joinSuffix(labels, depth)
		if e, ok := r.cacheGet(name, dnswire.TypeNS); ok {
			if e.delegation != "" {
				res.RCode = e.rcode
				res.Delegation = e.delegation
				return nil
			}
			if e.rcode == dnswire.RCodeNXDomain {
				res.RCode = e.rcode
				return nil
			}
			continue // cached ENT; go deeper
		}
		resp, sent, err := r.exchange(name, dnswire.TypeNS)
		res.Queries += sent
		if err != nil {
			return err
		}
		if err := r.absorb(name, dnswire.TypeNS, resp, res); err != nil {
			return err
		}
		if res.Delegation != "" || res.RCode == dnswire.RCodeNXDomain {
			return nil
		}
		// NODATA at an empty non-terminal (e.g. co.nz): continue deeper.
	}
	return nil
}

// joinSuffix returns the name formed by the last depth labels.
func joinSuffix(labels []string, depth int) string {
	out := ""
	for i := len(labels) - depth; i < len(labels); i++ {
		out += labels[i] + "."
	}
	return out
}

// absorb caches and records a response.
func (r *Resolver) absorb(qname string, qtype dnswire.Type, resp *dnswire.Message, res *Result) error {
	ttl := ttlOf(resp)
	now := r.cfg.Now()
	switch resp.Header.RCode {
	case dnswire.RCodeNoError:
		if delegation, ok := classify(resp); ok {
			res.Delegation = delegation
			res.RCode = dnswire.RCodeNoError
			r.cachePut(delegation, dnswire.TypeNS, cacheEntry{
				expires: now.Add(ttl), rcode: dnswire.RCodeNoError, delegation: delegation,
			})
			return nil
		}
		// NODATA (apex or ENT): cache the absence.
		res.RCode = dnswire.RCodeNoError
		r.cachePut(qname, qtype, cacheEntry{expires: now.Add(ttl), rcode: dnswire.RCodeNoError})
		return nil
	case dnswire.RCodeNXDomain:
		res.RCode = dnswire.RCodeNXDomain
		r.cachePut(qname, qtype, cacheEntry{expires: now.Add(ttl), rcode: dnswire.RCodeNXDomain})
		if r.cfg.AggressiveNSEC && r.cfg.Validate {
			r.nsec.Remember(resp, now.Add(ttl))
		}
		return nil
	default:
		res.RCode = resp.Header.RCode
		return nil
	}
}

// validate issues the DNSSEC queries of a validating resolver: DS for the
// delegation (per-domain) and DNSKEY for the zone apex (once per TTL).
func (r *Resolver) validate(res *Result) error {
	if _, ok := r.cacheGet(res.Delegation, dnswire.TypeDS); !ok {
		resp, sent, err := r.exchange(res.Delegation, dnswire.TypeDS)
		res.Queries += sent
		if err != nil {
			return err
		}
		r.cachePut(res.Delegation, dnswire.TypeDS, cacheEntry{
			expires: r.cfg.Now().Add(ttlOf(resp)), rcode: resp.Header.RCode,
		})
	}
	if _, ok := r.cacheGet(r.origin, dnswire.TypeDNSKEY); !ok {
		resp, sent, err := r.exchange(r.origin, dnswire.TypeDNSKEY)
		res.Queries += sent
		if err != nil {
			return err
		}
		r.cachePut(r.origin, dnswire.TypeDNSKEY, cacheEntry{
			expires: r.cfg.Now().Add(ttlOf(resp)), rcode: resp.Header.RCode,
		})
	}
	return nil
}
