package resolver

import (
	"bytes"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
)

func udpAddrPort(t *testing.T, conn *net.UDPConn) netip.AddrPort {
	t.Helper()
	ap := conn.LocalAddr().(*net.UDPAddr).AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// TestNetTransportUDPTimeout: a server that never answers must fail the
// exchange at the deadline, not hang.
func TestNetTransportUDPTimeout(t *testing.T) {
	silent, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	tr := &NetTransport{Server: udpAddrPort(t, silent), Timeout: 150 * time.Millisecond}
	start := time.Now()
	_, _, err = tr.Exchange(dnswire.NewQuery(9, "www.d1.nl.", dnswire.TypeA), false)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange against a silent server succeeded")
	}
	if !strings.Contains(err.Error(), "udp read") {
		t.Errorf("err = %v, want a udp read deadline error", err)
	}
	if elapsed < 100*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("timed out after %v, want ~150ms", elapsed)
	}
}

// TestNetTransportStrayDatagramTolerance: the hardened read loop must
// discard garbage, mismatched IDs, non-responses, and wrong-source
// datagrams, then still accept the genuine reply.
func TestNetTransportStrayDatagramTolerance(t *testing.T) {
	server, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	stranger, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()

	go func() {
		buf := make([]byte, 65535)
		n, client, err := server.ReadFromUDPAddrPort(buf)
		if err != nil || n < 12 {
			return
		}
		q := append([]byte(nil), buf[:n]...)

		// A plausible response with the right ID from the WRONG source:
		// only real source verification rejects this one.
		spoofed := append([]byte(nil), q...)
		spoofed[2] |= 0x80
		stranger.WriteToUDPAddrPort(spoofed, client)

		// Garbage: too short to even carry a header.
		server.WriteToUDPAddrPort([]byte{0xde, 0xad}, client)

		// Valid response shape, mismatched transaction ID.
		wrongID := append([]byte(nil), spoofed...)
		wrongID[0] ^= 0xFF
		server.WriteToUDPAddrPort(wrongID, client)

		// The query echoed back without QR set: not a response.
		server.WriteToUDPAddrPort(q, client)

		// Finally, the genuine reply.
		server.WriteToUDPAddrPort(spoofed, client)
	}()

	tr := &NetTransport{Server: udpAddrPort(t, server), Timeout: 2 * time.Second}
	q := dnswire.NewQuery(41, "www.d1.nl.", dnswire.TypeA)
	resp, _, err := tr.Exchange(q, false)
	if err != nil {
		t.Fatalf("exchange failed despite a genuine reply arriving: %v", err)
	}
	if resp.Header.ID != 41 || !resp.Header.Response {
		t.Fatalf("resp header = %+v", resp.Header)
	}
	if got := tr.StrayDatagrams(); got != 4 {
		t.Errorf("stray datagrams = %d, want 4 (spoofed source, garbage, wrong ID, non-response)", got)
	}
}

// TestNetTransportTCPShortRead: a server that advertises a length prefix
// and then closes mid-message must produce a framing error, not a hang
// or a bogus parse.
func TestNetTransportTCPShortRead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := authserver.ReadTCPMessage(conn); err != nil {
			return
		}
		// Claim 256 bytes, deliver 5, hang up.
		conn.Write([]byte{0x01, 0x00, 'b', 'o', 'g', 'u', 's'})
	}()

	ap := ln.Addr().(*net.TCPAddr).AddrPort()
	tr := &NetTransport{
		Server:  netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()),
		Timeout: 2 * time.Second,
	}
	_, _, err = tr.Exchange(dnswire.NewQuery(7, "www.d1.nl.", dnswire.TypeA), true)
	if err == nil {
		t.Fatal("short TCP read succeeded")
	}
	if !strings.Contains(err.Error(), "short TCP message") {
		t.Errorf("err = %v, want a short-message framing error", err)
	}
}

func TestReadTCPMessageTruncatedStream(t *testing.T) {
	// Prefix promises 100 bytes; the stream holds 5.
	r := bytes.NewReader([]byte{0x00, 0x64, 1, 2, 3, 4, 5})
	if _, err := authserver.ReadTCPMessage(r); err == nil {
		t.Fatal("truncated stream parsed")
	}
	// A stream that dies inside the prefix itself.
	if _, err := authserver.ReadTCPMessage(bytes.NewReader([]byte{0x00})); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestWriteTCPMessageOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := authserver.WriteTCPMessage(&buf, make([]byte, 0x10000)); err == nil {
		t.Fatal("65536-byte message accepted by 16-bit framing")
	}
	if buf.Len() != 0 {
		t.Errorf("oversized write emitted %d bytes before failing", buf.Len())
	}
	if err := authserver.WriteTCPMessage(&buf, make([]byte, 0xFFFF)); err != nil {
		t.Fatalf("65535-byte message rejected: %v", err)
	}
	if buf.Len() != 2+0xFFFF {
		t.Errorf("framed length = %d", buf.Len())
	}
}
