package anycast

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func randomClients(seed int64, n int) []netip.Addr {
	r := rand.New(rand.NewSource(seed))
	out := make([]netip.Addr, n)
	for i := range out {
		var b [4]byte
		r.Read(b[:])
		b[0] = 1 + b[0]%223
		out[i] = netip.AddrFrom4(b)
	}
	return out
}

func TestNewDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment(nil); err == nil {
		t.Error("empty deployment accepted")
	}
	if _, err := NewDeployment([]Site{{Code: "bad", Lat: 123}}); err == nil {
		t.Error("bad latitude accepted")
	}
}

func TestGreatCircleKnownDistances(t *testing.T) {
	// LAX ↔ AMS is ≈8950 km.
	d := greatCircleKm(33.94, -118.41, 52.31, 4.76)
	if d < 8500 || d > 9400 {
		t.Errorf("LAX-AMS = %.0f km", d)
	}
	// Zero distance.
	if d := greatCircleKm(10, 20, 10, 20); d > 0.001 {
		t.Errorf("self distance = %v", d)
	}
}

func TestPropagationRTTMonotone(t *testing.T) {
	if PropagationRTT(0) < 2*time.Millisecond {
		t.Error("base cost missing")
	}
	if PropagationRTT(1000) >= PropagationRTT(5000) {
		t.Error("RTT not monotone in distance")
	}
	// Intercontinental ≈ 100-200ms.
	r := PropagationRTT(9000)
	if r < 80*time.Millisecond || r > 250*time.Millisecond {
		t.Errorf("9000km RTT = %v", r)
	}
}

func TestClientGeoDeterministicAndBounded(t *testing.T) {
	a := netip.MustParseAddr("203.0.113.7")
	lat1, lon1 := ClientGeo(a)
	lat2, lon2 := ClientGeo(a)
	if lat1 != lat2 || lon1 != lon2 {
		t.Fatal("geo not deterministic")
	}
	f := func(b [16]byte) bool {
		lat, lon := ClientGeo(netip.AddrFrom16(b))
		return lat >= -90 && lat <= 90 && lon >= -180 && lon <= 180
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCatchDeterministic(t *testing.T) {
	d := BRootDeployments[2020]
	a := netip.MustParseAddr("100.1.2.3")
	s1, r1 := d.Catch(a)
	s2, r2 := d.Catch(a)
	if s1 != s2 || r1 != r2 {
		t.Fatal("catchment not deterministic")
	}
	if s1 < 0 || s1 >= len(d.Sites()) {
		t.Fatalf("site index %d", s1)
	}
}

func TestMoreSitesLowerMedianRTT(t *testing.T) {
	clients := randomClients(1, 4000)
	m2018 := BRootDeployments[2018].MedianRTT(clients)
	m2019 := BRootDeployments[2019].MedianRTT(clients)
	m2020 := BRootDeployments[2020].MedianRTT(clients)
	if !(m2020 < m2019 && m2019 < m2018) {
		t.Errorf("median RTTs not improving: 2018=%v 2019=%v 2020=%v", m2018, m2019, m2020)
	}
	// The 2020 expansion should cut the median substantially.
	if m2020 > m2018*8/10 {
		t.Errorf("2020 median %v not ≥20%% below 2018's %v", m2020, m2018)
	}
}

func TestCatchmentSharesSumToOne(t *testing.T) {
	clients := randomClients(2, 2000)
	shares := BRootDeployments[2020].CatchmentShare(clients)
	sum := 0.0
	for _, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %v", s)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Every 2020 site should catch someone.
	for i, s := range shares {
		if s == 0 {
			t.Errorf("site %d (%s) catches nothing", i, BRootDeployments[2020].Sites()[i].Code)
		}
	}
}

func TestSingleSiteCatchesEverything(t *testing.T) {
	d, err := NewDeployment([]Site{{Code: "only", Lat: 0, Lon: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range randomClients(3, 100) {
		if i, _ := d.Catch(a); i != 0 {
			t.Fatal("single-site catchment broke")
		}
	}
}

func TestMedianRTTEmptyClients(t *testing.T) {
	if BRootDeployments[2018].MedianRTT(nil) != 0 {
		t.Error("empty population median != 0")
	}
}
