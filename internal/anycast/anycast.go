// Package anycast models IP-anycast deployments, the redundancy layer §2
// of the paper describes: one service address announced from many global
// sites, with each client routed to (usually) its lowest-latency site.
// B-Root's anycast expansion between 2018 and 2020 is the paper's §3
// explanation for the growth in resolvers and ASes it observed, and
// per-site RTT differences are the raw material of Figures 5 and 8.
//
// Geography is synthetic but deterministic: clients hash to coordinates
// concentrated in population bands, propagation delay follows great-circle
// distance at ~2/3 c with a routing detour factor, and catchments are
// min-RTT with a small hash jitter standing in for BGP's imperfections.
package anycast

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"sort"
	"time"
)

// Site is one anycast instance location.
type Site struct {
	// Code is an airport-style identifier.
	Code string
	// Lat and Lon are in degrees.
	Lat, Lon float64
}

// Deployment is the site set announcing one service address.
type Deployment struct {
	sites []Site
}

// NewDeployment validates and wraps a site set.
func NewDeployment(sites []Site) (*Deployment, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("anycast: deployment needs at least one site")
	}
	for _, s := range sites {
		if s.Lat < -90 || s.Lat > 90 || s.Lon < -180 || s.Lon > 180 {
			return nil, fmt.Errorf("anycast: site %s has bad coordinates (%v, %v)", s.Code, s.Lat, s.Lon)
		}
	}
	return &Deployment{sites: append([]Site(nil), sites...)}, nil
}

// Sites returns the deployment's sites.
func (d *Deployment) Sites() []Site { return d.sites }

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// greatCircleKm computes the haversine distance between two coordinates.
func greatCircleKm(lat1, lon1, lat2, lon2 float64) float64 {
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(lat2 - lat1)
	dLon := toRad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(lat1))*math.Cos(toRad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// PropagationRTT estimates the round-trip time over a distance: light in
// fiber at ~200 km/ms, times a detour factor for real routing, round trip,
// plus a base hop cost.
func PropagationRTT(km float64) time.Duration {
	const fiberKmPerMs = 200.0
	const detour = 1.6
	ms := 2*km*detour/fiberKmPerMs + 2 // 2ms base
	return time.Duration(ms * float64(time.Millisecond))
}

// ClientGeo maps an address to deterministic synthetic coordinates,
// weighted toward the latitudes where Internet population concentrates.
func ClientGeo(addr netip.Addr) (lat, lon float64) {
	h := fnv.New64a()
	b := addr.As16()
	_, _ = h.Write(b[:])
	x := h.Sum64()
	// Longitude uniform; latitude drawn from three bands (N temperate,
	// tropics, S temperate) with population-like weights 55/35/10.
	lon = float64(x%36000)/100 - 180
	band := (x >> 16) % 100
	frac := float64((x>>32)%1000) / 1000
	switch {
	case band < 55:
		lat = 25 + frac*35 // 25..60 N
	case band < 90:
		lat = -15 + frac*40 // 15 S .. 25 N
	default:
		lat = -45 + frac*30 // 45 S .. 15 S
	}
	return lat, lon
}

// Catch returns the site serving addr and the modeled RTT to it. BGP does
// not always pick the lowest-latency site; a small deterministic jitter
// per (addr, site) stands in for that noise.
func (d *Deployment) Catch(addr netip.Addr) (siteIdx int, rtt time.Duration) {
	lat, lon := ClientGeo(addr)
	best := -1
	var bestRTT time.Duration
	for i, s := range d.sites {
		r := PropagationRTT(greatCircleKm(lat, lon, s.Lat, s.Lon))
		r += jitter(addr, s.Code)
		if best < 0 || r < bestRTT {
			best, bestRTT = i, r
		}
	}
	return best, bestRTT
}

// jitter derives a stable 0–15ms offset per (addr, site).
func jitter(addr netip.Addr, site string) time.Duration {
	h := fnv.New32a()
	b := addr.As16()
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(site))
	return time.Duration(h.Sum32()%15) * time.Millisecond
}

// CatchmentShare computes the fraction of a synthetic client population
// landing at each site — the skew behind "location 1 dominates" in
// Figure 5a.
func (d *Deployment) CatchmentShare(clients []netip.Addr) []float64 {
	counts := make([]int, len(d.sites))
	for _, a := range clients {
		i, _ := d.Catch(a)
		counts[i]++
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(len(clients))
	}
	return out
}

// MedianRTT computes the median catchment RTT over a client population —
// the metric that improves as a deployment adds sites (the paper's §3:
// B-Root "increased its number of anycast sites, increasing its global
// footprint and attracting more traffic from additional nearby
// resolvers").
func (d *Deployment) MedianRTT(clients []netip.Addr) time.Duration {
	if len(clients) == 0 {
		return 0
	}
	rtts := make([]time.Duration, len(clients))
	for i, a := range clients {
		_, rtts[i] = d.Catch(a)
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	return rtts[len(rtts)/2]
}

// BRootDeployments models B-Root's growing site set across the paper's
// snapshots: 2 sites in 2018 (LAX, MIA), then staged expansion. Counts
// and codes are illustrative; what matters is the growth.
var BRootDeployments = map[int]*Deployment{
	2018: mustDeployment([]Site{
		{Code: "lax", Lat: 33.94, Lon: -118.41},
		{Code: "mia", Lat: 25.79, Lon: -80.29},
	}),
	2019: mustDeployment([]Site{
		{Code: "lax", Lat: 33.94, Lon: -118.41},
		{Code: "mia", Lat: 25.79, Lon: -80.29},
		{Code: "ams", Lat: 52.31, Lon: 4.76},
	}),
	2020: mustDeployment([]Site{
		{Code: "lax", Lat: 33.94, Lon: -118.41},
		{Code: "mia", Lat: 25.79, Lon: -80.29},
		{Code: "ams", Lat: 52.31, Lon: 4.76},
		{Code: "sin", Lat: 1.36, Lon: 103.99},
		{Code: "gru", Lat: -23.44, Lon: -46.47},
		{Code: "nrt", Lat: 35.76, Lon: 140.39},
	}),
}

func mustDeployment(sites []Site) *Deployment {
	d, err := NewDeployment(sites)
	if err != nil {
		panic(err)
	}
	return d
}
