// Package profiling wires the standard -cpuprofile/-memprofile flags
// into a command. Both entrada and repro exit through os.Exit on error
// paths, which skips deferred calls, so Stop is idempotent and safe to
// invoke from every exit path as well as a defer.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profile flag values for one command.
type Flags struct {
	cpu   *string
	mem   *string
	mutex *string

	cpuFile *os.File
	stopped bool
}

// Register adds -cpuprofile, -memprofile, and -mutexprofile to fs. Call
// before fs is parsed.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu:   fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		mem:   fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
		mutex: fs.String("mutexprofile", "", "write a pprof mutex-contention profile to this file on exit (records every contended lock while set)"),
	}
}

// Start begins CPU profiling when -cpuprofile was given and turns on
// mutex-contention sampling when -mutexprofile was given (full sampling:
// the contention this repo profiles for — shard locks on serve paths —
// is exactly what a sampled fraction would hide). Every exit path must
// reach Stop afterwards or the profile files end up empty.
func (f *Flags) Start() error {
	if *f.mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and, when -memprofile was given, writes
// a post-GC heap profile. Calling it more than once is a no-op, so it
// can be both deferred and called explicitly before os.Exit.
func (f *Flags) Stop() {
	if f == nil || f.stopped {
		return
	}
	f.stopped = true
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
	}
	if *f.mutex != "" {
		if file, err := os.Create(*f.mutex); err != nil {
			fmt.Fprintln(os.Stderr, "mutexprofile:", err)
		} else {
			if err := pprof.Lookup("mutex").WriteTo(file, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mutexprofile:", err)
			}
			file.Close()
			runtime.SetMutexProfileFraction(0)
		}
	}
	if *f.mem == "" {
		return
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer file.Close()
	runtime.GC() // flush dead objects so the profile shows live heap
	if err := pprof.WriteHeapProfile(file); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}
