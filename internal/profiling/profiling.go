// Package profiling wires the standard -cpuprofile/-memprofile flags
// into a command. Both entrada and repro exit through os.Exit on error
// paths, which skips deferred calls, so Stop is idempotent and safe to
// invoke from every exit path as well as a defer.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profile flag values for one command.
type Flags struct {
	cpu *string
	mem *string

	cpuFile *os.File
	stopped bool
}

// Register adds -cpuprofile and -memprofile to fs. Call before fs is
// parsed.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Every exit
// path must reach Stop afterwards or the profile file ends up empty.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and, when -memprofile was given, writes
// a post-GC heap profile. Calling it more than once is a no-op, so it
// can be both deferred and called explicitly before os.Exit.
func (f *Flags) Stop() {
	if f == nil || f.stopped {
		return
	}
	f.stopped = true
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
	}
	if *f.mem == "" {
		return
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer file.Close()
	runtime.GC() // flush dead objects so the profile shows live heap
	if err := pprof.WriteHeapProfile(file); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}
